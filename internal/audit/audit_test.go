package audit_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/audit"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
)

// example1Policy rebuilds the paper's Example 1 shape: Carol's cloak
// covers three users (safe against policy-unaware attackers at k=2) but
// her cloaking group is a singleton, so a policy-aware attacker narrows
// the sender to Carol alone.
func example1Policy(t *testing.T) *lbs.Assignment {
	t.Helper()
	db := location.New(0)
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}} {
		if err := db.Add(u.id, geo.Point{X: u.x, Y: u.y}); err != nil {
			t.Fatal(err)
		}
	}
	cloaks := []geo.Rect{
		geo.NewRect(0, 0, 4, 4), // Alice
		geo.NewRect(0, 0, 4, 4), // Bob
		geo.NewRect(0, 0, 4, 8), // Carol: covers Alice+Bob+Carol, group of one
		geo.NewRect(4, 0, 8, 4), // Sam
		geo.NewRect(4, 0, 8, 4), // Tom
	}
	a, err := lbs.NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// safePolicy groups the same snapshot so both attacker classes see at
// least k=2 candidates everywhere.
func safePolicy(t *testing.T) *lbs.Assignment {
	t.Helper()
	a := example1Policy(t)
	db := a.DB()
	cloaks := []geo.Rect{
		geo.NewRect(0, 0, 4, 4), // Alice
		geo.NewRect(0, 0, 4, 4), // Bob
		geo.NewRect(0, 0, 8, 8), // Carol
		geo.NewRect(0, 0, 8, 8), // Sam
		geo.NewRect(0, 0, 8, 8), // Tom
	}
	safe, err := lbs.NewAssignment(db, cloaks)
	if err != nil {
		t.Fatal(err)
	}
	return safe
}

func TestSamplerRates(t *testing.T) {
	never := audit.NewSampler(0)
	for i := 0; i < 100; i++ {
		if never.Sample() {
			t.Fatal("rate-0 sampler fired")
		}
	}
	always := audit.NewSampler(1)
	for i := 0; i < 100; i++ {
		if !always.Sample() {
			t.Fatal("rate-1 sampler skipped")
		}
	}
	quarter := audit.NewSampler(0.25)
	if !quarter.Sample() {
		t.Fatal("first call must always be sampled")
	}
	hits := 1
	for i := 1; i < 400; i++ {
		if quarter.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("rate-0.25 sampler fired %d/400 times, want 100", hits)
	}
}

func TestObservePolicyMatchesAttackerGroundTruth(t *testing.T) {
	pol := example1Policy(t)
	reg := metrics.NewRegistry()
	aud := audit.New(reg, audit.Options{})
	s := aud.ObservePolicy(context.Background(), "ex1", pol, 2)

	_, wantAware := attacker.Audit(pol, 2, attacker.PolicyAware)
	_, wantUnaware := attacker.Audit(pol, 2, attacker.PolicyUnaware)
	if s.MinKAware != wantAware || s.MinKUnaware != wantUnaware {
		t.Fatalf("ObservePolicy min-k (%d, %d) != attacker.Audit ground truth (%d, %d)",
			s.MinKAware, s.MinKUnaware, wantAware, wantUnaware)
	}
	if s.MinKAware != 1 || s.MinKUnaware != 2 {
		t.Fatalf("Example 1 shape lost: minAware=%d minUnaware=%d", s.MinKAware, s.MinKUnaware)
	}
	if s.BreachesAware != 1 || s.BreachesUnaware != 0 {
		t.Fatalf("breaches (%d aware, %d unaware), want (1, 0)", s.BreachesAware, s.BreachesUnaware)
	}

	if got := reg.Counter("anon_breach:ex1/policy-aware").Value(); got != 1 {
		t.Errorf("anon_breach policy-aware counter = %d, want 1", got)
	}
	if got := reg.Counter("anon_breach:ex1/policy-unaware").Value(); got != 0 {
		t.Errorf("anon_breach policy-unaware counter = %d, want 0", got)
	}
	if got := reg.Counter("audit_sampled:ex1/policy").Value(); got != 1 {
		t.Errorf("audit_sampled policy counter = %d, want 1", got)
	}
	sum := reg.ValueHistogram("anon_achieved_k:ex1/policy-aware").Summary()
	if sum.Count != 1 {
		t.Errorf("anon_achieved_k observations = %d, want 1", sum.Count)
	}

	rep := aud.Report()
	if rep.Aware.Min != wantAware || rep.Unaware.Min != wantUnaware {
		t.Errorf("report min (%d, %d) != ground truth (%d, %d)",
			rep.Aware.Min, rep.Unaware.Min, wantAware, wantUnaware)
	}
	if rep.Aware.Breaches != 1 || rep.Unaware.Breaches != 0 {
		t.Errorf("report breaches (%d, %d), want (1, 0)", rep.Aware.Breaches, rep.Unaware.Breaches)
	}
	if len(rep.Engines) != 1 || rep.Engines[0] != "ex1" {
		t.Errorf("report engines %v, want [ex1]", rep.Engines)
	}
}

func TestBreachLogCarriesRequestIDAndExpectation(t *testing.T) {
	pol := example1Policy(t)
	var buf bytes.Buffer
	reg := metrics.NewRegistry()
	aud := audit.New(reg, audit.Options{
		Logger: audit.NewJSONLogger(&buf, slog.LevelWarn),
		// The engine under test registers PolicyAware=false, so its
		// policy-aware breach is expected by Proposition 3.
		ExpectPolicyAware: func(string) bool { return false },
	})
	ctx := audit.WithRequestID(context.Background(), "rid-test-42")
	aud.ObservePolicy(ctx, "kinside", pol, 2)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("breach log is not one JSON object: %v (log: %q)", err, buf.String())
	}
	if rec["msg"] != "anonymity breach" {
		t.Errorf("log msg %q", rec["msg"])
	}
	if rec["rid"] != "rid-test-42" {
		t.Errorf("log rid %q, want rid-test-42", rec["rid"])
	}
	if rec["awareness"] != "policy-aware" {
		t.Errorf("log awareness %q", rec["awareness"])
	}
	if rec["achievedK"].(float64) != 1 || rec["wantK"].(float64) != 2 {
		t.Errorf("log achievedK/wantK = %v/%v, want 1/2", rec["achievedK"], rec["wantK"])
	}
	if rec["expected"] != true {
		t.Errorf("breach of a declared k-inside engine must log expected=true, got %v", rec["expected"])
	}

	// The same breach from an engine claiming policy-awareness is an
	// incident: expected=false.
	buf.Reset()
	aud2 := audit.New(metrics.NewRegistry(), audit.Options{
		Logger:            audit.NewJSONLogger(&buf, slog.LevelWarn),
		ExpectPolicyAware: func(string) bool { return true },
	})
	aud2.ObservePolicy(ctx, "claimsaware", pol, 2)
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["expected"] != false {
		t.Errorf("breach of a policy-aware engine must log expected=false, got %v", rec["expected"])
	}
}

func TestObserveRequestPerCloak(t *testing.T) {
	pol := example1Policy(t)
	reg := metrics.NewRegistry()
	aud := audit.New(reg, audit.Options{})
	ctx := context.Background()

	carol, err := pol.CloakOf("Carol")
	if err != nil {
		t.Fatal(err)
	}
	s := aud.ObserveRequest(ctx, "ex1", pol, carol, 2)
	if s.KAware != 1 || s.KUnaware != 3 {
		t.Fatalf("Carol's cloak audited as (%d aware, %d unaware), want (1, 3)", s.KAware, s.KUnaware)
	}
	if got := reg.Counter("anon_breach:ex1/policy-aware").Value(); got != 1 {
		t.Errorf("request breach counter = %d, want 1", got)
	}

	alice, err := pol.CloakOf("Alice")
	if err != nil {
		t.Fatal(err)
	}
	s = aud.ObserveRequest(ctx, "ex1", pol, alice, 2)
	if s.KAware != 2 || s.KUnaware != 2 {
		t.Fatalf("Alice's cloak audited as (%d, %d), want (2, 2)", s.KAware, s.KUnaware)
	}
	if got := reg.Counter("anon_breach:ex1/policy-aware").Value(); got != 1 {
		t.Errorf("safe cloak incremented the breach counter: %d", got)
	}
}

func TestMaybeObserveRequestSamples(t *testing.T) {
	pol := safePolicy(t)
	aud := audit.New(metrics.NewRegistry(), audit.Options{Rate: 0.5})
	ctx := context.Background()
	cloak := pol.CloakAt(0)
	audited := 0
	for i := 0; i < 10; i++ {
		if _, ok := aud.MaybeObserveRequest(ctx, "e", pol, cloak, 2); ok {
			audited++
		}
	}
	if audited != 5 {
		t.Fatalf("rate-0.5 audited %d/10 requests, want 5", audited)
	}
	rep := aud.Report()
	if rep.RequestAudits != 5 || rep.Skipped != 5 {
		t.Fatalf("report counts audits=%d skipped=%d, want 5/5", rep.RequestAudits, rep.Skipped)
	}
	// Rate 0 disables sampling entirely.
	aud.SetRate(0)
	if _, ok := aud.MaybeObserveRequest(ctx, "e", pol, cloak, 2); ok {
		t.Fatal("rate-0 auditor sampled a request")
	}
}

func TestReportWindowAndPercentiles(t *testing.T) {
	pol := example1Policy(t)
	aud := audit.New(metrics.NewRegistry(), audit.Options{Window: 8})
	ctx := context.Background()
	// Achieved-k (aware) per cloak: Carol 1, Alice 2, Sam 2.
	for _, user := range []string{"Carol", "Alice", "Sam", "Alice", "Sam"} {
		cloak, err := pol.CloakOf(user)
		if err != nil {
			t.Fatal(err)
		}
		aud.ObserveRequest(ctx, "ex1", pol, cloak, 2)
	}
	rep := aud.Report()
	if rep.WindowCap != 8 || rep.WindowSamples != 5 {
		t.Fatalf("window cap/samples = %d/%d, want 8/5", rep.WindowCap, rep.WindowSamples)
	}
	// Sorted aware samples: [1 2 2 2 2] — min 1, p50 2, p95 2, max 2.
	if rep.Aware.Min != 1 || rep.Aware.P50 != 2 || rep.Aware.P95 != 2 || rep.Aware.Max != 2 {
		t.Fatalf("aware stats %+v, want min 1 p50 2 p95 2 max 2", rep.Aware)
	}

	// Overflow evicts the oldest entries: 8 more safe observations push
	// Carol's 1 out of the window, but her breach total must survive.
	for i := 0; i < 8; i++ {
		cloak, _ := pol.CloakOf("Alice")
		aud.ObserveRequest(ctx, "ex1", pol, cloak, 2)
	}
	rep = aud.Report()
	if rep.WindowSamples != 8 {
		t.Fatalf("window samples after overflow = %d, want 8", rep.WindowSamples)
	}
	if rep.Aware.Min != 2 {
		t.Fatalf("evicted sample still in window: min = %d", rep.Aware.Min)
	}
	if rep.Aware.Breaches != 1 {
		t.Fatalf("breach total aged out: %d, want 1", rep.Aware.Breaches)
	}
}

func TestMergeReports(t *testing.T) {
	a := audit.Report{
		SampleRate: 0.25, WindowCap: 4, WindowSamples: 4,
		PolicyAudits: 2, RequestAudits: 10, Skipped: 30,
		Aware:   audit.KStats{Count: 4, Min: 3, P50: 5, P95: 9, Max: 9, Breaches: 1},
		Unaware: audit.KStats{Count: 4, Min: 4, P50: 6, P95: 10, Max: 10},
		Engines: []string{"casper"}, AvgCloakArea: 8,
	}
	b := audit.Report{
		SampleRate: 0.25, WindowCap: 4, WindowSamples: 2,
		PolicyAudits: 1, RequestAudits: 5, Skipped: 15,
		Aware:   audit.KStats{Count: 2, Min: 2, P50: 8, P95: 12, Max: 12, Breaches: 2},
		Unaware: audit.KStats{Count: 2, Min: 5, P50: 7, P95: 11, Max: 11},
		Engines: []string{"bulkdp"}, AvgCloakArea: 2,
	}
	m := audit.Merge(a, b)
	if m.Shards != 2 {
		t.Errorf("shards = %d, want 2", m.Shards)
	}
	if m.PolicyAudits != 3 || m.RequestAudits != 15 || m.Skipped != 45 {
		t.Errorf("counters %+v not summed", m)
	}
	if m.Aware.Min != 2 || m.Aware.Max != 12 || m.Aware.Breaches != 3 {
		t.Errorf("aware extrema/breaches %+v", m.Aware)
	}
	if m.Unaware.Min != 4 || m.Unaware.Max != 11 {
		t.Errorf("unaware extrema %+v", m.Unaware)
	}
	// Count-weighted p50: (4*5 + 2*8) / 6 = 6.
	if m.Aware.P50 != 6 {
		t.Errorf("merged aware p50 = %d, want 6", m.Aware.P50)
	}
	// Weighted area: (4*8 + 2*2) / 6 = 6.
	if m.AvgCloakArea != 6 {
		t.Errorf("merged avg area = %v, want 6", m.AvgCloakArea)
	}
	if len(m.Engines) != 2 || m.Engines[0] != "bulkdp" || m.Engines[1] != "casper" {
		t.Errorf("merged engines %v", m.Engines)
	}

	// Regression: a shard with only aware samples must not poison the
	// min of a later shard's unaware samples (and vice versa).
	onlyAware := audit.Report{Aware: audit.KStats{Count: 1, Min: 7, P50: 7, P95: 7, Max: 7}}
	onlyUnaware := audit.Report{Unaware: audit.KStats{Count: 1, Min: 9, P50: 9, P95: 9, Max: 9}}
	m = audit.Merge(onlyAware, onlyUnaware)
	if m.Aware.Min != 7 || m.Unaware.Min != 9 {
		t.Fatalf("asymmetric shard merge lost a min: aware %d unaware %d, want 7/9", m.Aware.Min, m.Unaware.Min)
	}

	empty := audit.Merge()
	if empty.Shards != 0 || empty.Aware.Count != 0 {
		t.Errorf("empty merge %+v", empty)
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := audit.MintRequestID(), audit.MintRequestID()
	if a == "" || a == b {
		t.Fatalf("minted IDs not unique: %q %q", a, b)
	}
	ctx := audit.WithRequestID(context.Background(), a)
	if got := audit.RequestID(ctx); got != a {
		t.Fatalf("RequestID = %q, want %q", got, a)
	}
	if audit.RequestID(context.Background()) != "" {
		t.Fatal("empty context carries a request ID")
	}
	if audit.WithRequestID(ctx, "") != ctx {
		t.Fatal("empty rid must leave the context unchanged")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "Error": slog.LevelError,
	} {
		got, err := audit.ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := audit.ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// TestConcurrentAuditor exercises every auditor entry point from many
// goroutines at once; run under -race it proves the observatory is safe
// on concurrent request paths.
func TestConcurrentAuditor(t *testing.T) {
	pol := example1Policy(t)
	var buf bytes.Buffer
	var bufMu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		bufMu.Lock()
		defer bufMu.Unlock()
		return buf.Write(p)
	})
	aud := audit.New(metrics.NewRegistry(), audit.Options{
		Rate:   0.5,
		Window: 64,
		Logger: audit.NewJSONLogger(lockedWriter, slog.LevelWarn),
	})
	ctx := audit.WithRequestID(context.Background(), audit.MintRequestID())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cloak := pol.CloakAt(g % pol.Len())
			for i := 0; i < 50; i++ {
				aud.MaybeObserveRequest(ctx, "ex1", pol, cloak, 2)
				if i%10 == 0 {
					aud.ObservePolicy(ctx, "ex1", pol, 2)
					aud.Report()
				}
			}
		}(g)
	}
	wg.Wait()
	rep := aud.Report()
	if rep.RequestAudits+rep.Skipped != 400 {
		t.Fatalf("audits %d + skipped %d != 400 requests", rep.RequestAudits, rep.Skipped)
	}
	if rep.PolicyAudits != 40 {
		t.Fatalf("policy audits = %d, want 40", rep.PolicyAudits)
	}
	if rep.Aware.Min != 1 {
		t.Fatalf("concurrent report lost the Example 1 floor: min = %d", rep.Aware.Min)
	}
}

// writerFunc adapts a function to io.Writer for the locked test logger.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestMergeEdgeCases(t *testing.T) {
	// An entirely empty shard report (fresh server, no traffic yet) must
	// not clobber the merged min or produce zero counts: Merge skips
	// Count==0 shards for order statistics but still counts the shard.
	loaded := audit.Report{
		SampleRate: 0.5, WindowCap: 8, WindowSamples: 3,
		PolicyAudits: 1, RequestAudits: 2,
		Aware:   audit.KStats{Count: 3, Min: 4, P50: 5, P95: 6, Max: 6, Breaches: 1},
		Unaware: audit.KStats{Count: 3, Min: 6, P50: 7, P95: 8, Max: 8},
		Engines: []string{"bulkdp"}, AvgCloakArea: 10,
	}
	m := audit.Merge(audit.Report{}, loaded, audit.Report{})
	if m.Shards != 3 {
		t.Errorf("shards = %d, want 3", m.Shards)
	}
	if m.Aware.Min != 4 || m.Aware.Count != 3 || m.Aware.Breaches != 1 {
		t.Errorf("empty shards perturbed aware stats: %+v", m.Aware)
	}
	if m.Unaware.Min != 6 {
		t.Errorf("empty shards perturbed unaware min: %+v", m.Unaware)
	}
	if m.AvgCloakArea != 10 {
		t.Errorf("empty shards perturbed avg area: %v", m.AvgCloakArea)
	}

	// Shards with differing achieved-k: the merged min must be the exact
	// minimum across shards, never a weighted average — min-k is the
	// guarantee the paper is about, so it cannot be approximated.
	low := audit.Report{Aware: audit.KStats{Count: 1, Min: 2, P50: 2, P95: 2, Max: 2}}
	high := audit.Report{Aware: audit.KStats{Count: 99, Min: 50, P50: 50, P95: 50, Max: 50}}
	m = audit.Merge(high, low)
	if m.Aware.Min != 2 {
		t.Fatalf("merged min-k = %d, want exact 2 (one shard's weak floor must dominate)", m.Aware.Min)
	}
	if m.Aware.Max != 50 {
		t.Errorf("merged max = %d, want 50", m.Aware.Max)
	}
	// The weighted percentile must still lean toward the heavy shard.
	if m.Aware.P50 < 40 {
		t.Errorf("merged p50 = %d, want count-weighted (~50)", m.Aware.P50)
	}

	// Overlapping rolling windows: two shards that audited the same
	// traffic (e.g. replicas behind a round-robin) sum their counts —
	// Merge documents count-weighted semantics, and must not panic or
	// drop either window.
	m = audit.Merge(loaded, loaded)
	if m.Aware.Count != 6 || m.WindowSamples != 6 {
		t.Errorf("overlapping windows: count=%d samples=%d, want 6/6", m.Aware.Count, m.WindowSamples)
	}
	if m.Aware.Min != 4 || m.Aware.P50 != 5 {
		t.Errorf("overlapping windows changed stats: %+v", m.Aware)
	}

	// Ledger roots concatenate across shards, preserving worker labels.
	withRoot := func(worker, root string) audit.Report {
		return audit.Report{LedgerRoots: []audit.LedgerRoot{{
			Worker: worker, BatchSeq: 1, Events: 3, ChainRoot: root, SealedMs: 1,
		}}}
	}
	m = audit.Merge(withRoot("w1", "aa"), audit.Report{}, withRoot("w2", "bb"))
	if len(m.LedgerRoots) != 2 {
		t.Fatalf("merged ledger roots = %d, want 2", len(m.LedgerRoots))
	}
	if m.LedgerRoots[0].Worker != "w1" || m.LedgerRoots[1].ChainRoot != "bb" {
		t.Errorf("ledger root concat order lost: %+v", m.LedgerRoots)
	}
}
