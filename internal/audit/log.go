package audit

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewJSONLogger returns a slog logger emitting one JSON object per line
// to w — the structured-logging configuration of cmd/anonserver. Records
// at or above level are emitted.
func NewJSONLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel maps the -log-level flag values (debug, info, warn, error;
// case-insensitive) to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("audit: unknown log level %q (want debug, info, warn, or error)", s)
	}
}
