package audit

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
)

// Request IDs correlate one serving request across the three
// observability sinks: the structured log line, the obs trace span, and
// the audit sample. The HTTP layer mints one per request (honouring an
// incoming X-Request-ID so a coordinator's ID survives the shard hop),
// threads it through context.Context, and echoes it in the response
// header; everything below the handler — engine middleware, parallel
// workers, cluster shard RPCs — reads it from the context it already
// receives.

// ridKey carries the request ID through a context chain.
type ridKey struct{}

// ridPrefix distinguishes processes: two servers minting IDs concurrently
// must not collide, so each process draws a random prefix at start.
var ridPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

// MintRequestID returns a new process-unique request ID, e.g.
// "9f2c41aa-000017".
func MintRequestID() string {
	return fmt.Sprintf("%s-%06x", ridPrefix, ridCounter.Add(1))
}

// WithRequestID returns a context carrying rid. An empty rid returns ctx
// unchanged.
func WithRequestID(ctx context.Context, rid string) context.Context {
	if rid == "" {
		return ctx
	}
	return context.WithValue(ctx, ridKey{}, rid)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	if rid, ok := ctx.Value(ridKey{}).(string); ok {
		return rid
	}
	return ""
}
