package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/lbs"
	"policyanon/internal/ledger"
	"policyanon/internal/motion"
	"policyanon/internal/obs"
)

// This file wires the live motion pipeline (internal/motion) into the
// HTTP server. With motion enabled, POST /v1/moves switches from the
// synchronous maintain-inline protocol to streaming ingest: updates are
// validated at the boundary, queued with explicit backpressure, and
// applied by the pipeline's maintenance loop off the read path. The
// serving path adopts freshly published snapshots pull-based: each
// serving handler compares the pipeline's epoch against the last adopted
// one and swaps the CSP policy under the server lock only when it
// changed — the pipeline's maintenance loop never takes the server lock,
// so applies can never block behind slow requests (and vice versa).

// EnableMotion arms streaming movement ingest. The pipeline itself
// starts when a snapshot is installed (POST /v1/snapshot or a checkpoint
// restore) and inherits the snapshot's engine, k, and engine options;
// cfg carries the streaming knobs: queue capacity, batch size and flush
// interval, backpressure policy, strategy and rebuild threshold, the
// motion bound, checkpoint cadence and sink. cfg.Registry, cfg.Logger
// and cfg.BaseContext are overridden with the server's own.
func (s *Server) EnableMotion(cfg motion.Config) {
	s.mu.Lock()
	s.motionCfg = &cfg
	s.mu.Unlock()
}

// MotionPipeline returns the live pipeline, or nil when motion is
// disabled or no snapshot is installed yet.
func (s *Server) MotionPipeline() *motion.Pipeline {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pipeline
}

// startMotionLocked hands the freshly installed snapshot state over to a
// new pipeline. Callers hold s.mu and must not touch s.db or s.anon
// afterwards — the maintenance loop owns them now (the serving path only
// ever reads the immutable clones the pipeline publishes).
func (s *Server) startMotionLocked() error {
	if s.motionCfg == nil {
		return nil
	}
	if s.pipeline != nil {
		// A re-install replaces the pipeline; drain the old one so its
		// accepted moves are not silently dropped. Its state is discarded
		// afterwards either way, so a hung drain only costs the timeout.
		old := s.pipeline
		s.pipeline = nil
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := old.Close(ctx); err != nil && s.logger != nil {
			s.logger.Warn("motion: old pipeline drain failed", "err", err)
		}
		cancel()
	}
	cfg := *s.motionCfg
	cfg.Engine = s.snapEngine
	cfg.K = s.k
	cfg.Opts = s.snapOpts
	cfg.Registry = s.reg
	cfg.Logger = s.logger
	cfg.Flight = s.recorder
	cfg.BaseContext = obs.WithTracer(context.Background(), s.tracer)
	name, k, userSwap := s.snapEngine, s.k, cfg.OnSwap
	baseCtx := cfg.BaseContext
	cfg.OnSwap = func(snap *motion.Snapshot) {
		// Runs on the maintenance loop: observe the maintained policy in
		// the privacy observatory (the streaming path bypasses
		// engine.WithAudit), never take s.mu. The initial snapshot was
		// already audited by the install path.
		if snap.Strategy != "initial" {
			s.aud.ObservePolicy(baseCtx, name, snap.Policy, k)
		}
		if l := s.led.Load(); l != nil {
			detail, _ := json.Marshal(map[string]any{
				"epoch":    snap.Epoch,
				"strategy": snap.Strategy,
				"users":    snap.Policy.Len(),
				"cost":     snap.Policy.Cost(),
			})
			l.Append(baseCtx, ledger.KindSnapshotSwap, name, "", string(detail))
		}
		if userSwap != nil {
			userSwap(snap)
		}
	}
	p, err := motion.NewWithState(s.db, s.bounds, cfg, s.anon, s.policy)
	if err != nil {
		return fmt.Errorf("motion pipeline: %w", err)
	}
	s.pipeline = p
	s.anon = nil // owned by the pipeline now
	s.lastEpoch.Store(p.Epoch())
	// Adopt the pipeline's initial snapshot immediately: it is rebound to
	// an immutable clone of the db, whereas the policy the install path
	// produced is bound to the live db the maintenance loop now mutates.
	// Serving from the latter would race record reads against applies.
	snap := p.Snapshot()
	s.policy = snap.Policy
	s.enginePolicies = map[string]*lbs.Assignment{s.snapEngine: snap.Policy}
	if s.csp != nil {
		s.csp.SetPolicy(snap.Policy)
	}
	return nil
}

// refreshMotion adopts the pipeline's latest published snapshot into the
// serving state. It is called at the top of serving handlers (pull-based
// adoption): the epoch compare is lock-free, and only an actual epoch
// change takes the server lock — so the common case costs one atomic
// load, and the maintenance loop never has to wait on the serving path.
func (s *Server) refreshMotion() {
	p := s.MotionPipeline()
	if p == nil {
		return
	}
	snap := p.Snapshot()
	if snap.Epoch == s.lastEpoch.Load() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pipeline != p || snap.Epoch == s.lastEpoch.Load() {
		return // raced with a re-install or another adopter
	}
	s.lastEpoch.Store(snap.Epoch)
	s.policy = snap.Policy
	s.enginePolicies = map[string]*lbs.Assignment{s.snapEngine: snap.Policy}
	if s.csp != nil {
		s.csp.SetPolicy(snap.Policy)
	}
	pst := p.Stats()
	s.stats.PolicyCost = snap.Policy.Cost()
	s.stats.AvgCloakArea = snap.Policy.AvgArea()
	s.stats.MovesApplied = pst.Moves
	s.stats.RowsRecomputed = pst.Rows
	s.stats.MaintenanceMs = float64(snap.ApplyTime.Microseconds()) / 1000
}

// DrainMotion stops the ingest queue and blocks until every accepted
// update has been applied (or ctx expires). It is the first step of the
// graceful-shutdown ordering: stop accepting moves → drain → final
// checkpoint → exit. Safe to call when motion is disabled.
func (s *Server) DrainMotion(ctx context.Context) error {
	p := s.MotionPipeline()
	if p == nil {
		return nil
	}
	err := p.Close(ctx)
	s.refreshMotion() // adopt the final snapshot for CheckpointTo
	return err
}

// MoveUpdateJSON is one streaming movement update on the wire.
// Coordinates are float64 — the validation boundary of the system — so
// malformed numeric input is detected and rejected instead of being
// silently truncated into the int32 domain.
type MoveUpdateJSON struct {
	ID string  `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// StreamMovesRequest is the streaming-ingest form of MovesRequest.
type StreamMovesRequest struct {
	Moves []MoveUpdateJSON `json:"moves"`
}

// handleMovesStreaming is POST /v1/moves with the pipeline active:
// validate, enqueue, 202. Updates are admitted in order; the first
// failure stops the batch and reports how many were already queued.
//
//	400 — invalid update (non-finite/out-of-bounds coordinates, unknown
//	      user, motion-bound violation); body carries the reason
//	429 — ingest queue full under the Drop backpressure policy
//	503 — pipeline draining (server shutting down)
func (s *Server) handleMovesStreaming(w http.ResponseWriter, r *http.Request, p *motion.Pipeline) {
	var req StreamMovesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	queued := 0
	for i, m := range req.Moves {
		err := p.Enqueue(r.Context(), motion.Update{UserID: m.ID, X: m.X, Y: m.Y})
		if err == nil {
			queued++
			continue
		}
		var rej *motion.RejectError
		switch {
		case errors.As(err, &rej):
			if l := s.Logger(); l != nil {
				// The request ID minted/echoed by instrument() rides the
				// context, so a rejected move correlates with the client's
				// X-Request-ID across log, trace, and response header.
				l.LogAttrs(r.Context(), slog.LevelWarn, "motion_rejected",
					slog.String("rid", audit.RequestID(r.Context())),
					slog.String("user", m.ID),
					slog.String("reason", string(rej.Reason)),
					slog.Int("move", i),
					slog.String("err", rej.Error()),
				)
			}
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":  rej.Error(),
				"reason": rej.Reason,
				"move":   i,
				"queued": queued,
			})
		case errors.Is(err, motion.ErrQueueFull):
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":  err.Error(),
				"move":   i,
				"queued": queued,
			})
		case errors.Is(err, motion.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":  err.Error(),
				"move":   i,
				"queued": queued,
			})
		default: // context canceled/deadline while blocked on a full queue
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":  err.Error(),
				"move":   i,
				"queued": queued,
			})
		}
		return
	}
	st := p.Stats()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"queued":     queued,
		"queueDepth": st.QueueDepth,
		"epoch":      st.Epoch,
	})
}

// handleMotion is GET /v1/motion: live pipeline accounting.
func (s *Server) handleMotion(w http.ResponseWriter, r *http.Request) {
	p := s.MotionPipeline()
	if p == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	s.refreshMotion()
	cfg := p.Config()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":          true,
		"strategy":         string(cfg.Strategy),
		"backpressure":     cfg.Policy.String(),
		"maxBatch":         cfg.MaxBatch,
		"flushIntervalMs":  float64(cfg.FlushInterval.Microseconds()) / 1000,
		"rebuildThreshold": cfg.RebuildThreshold,
		"maxMoveMeters":    cfg.MaxMoveMeters,
		"stats":            p.Stats(),
	})
}
