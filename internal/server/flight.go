package server

import (
	"fmt"
	"net/http"
	"time"

	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
)

// tailDecision is the retention side of tail-based sampling, run at the
// end of every traced serving request. A request's full span tree
// graduates into the flight recorder when anything made it interesting:
// an error status, latency above the rolling p99-derived threshold, a
// capture mark voted by a lower layer (audit breach, motion fallback,
// CSP cache-miss flight), a propagated upstream trace (cluster shard
// legs must be fetchable by the coordinator's stitcher), or an explicit
// X-Debug-Trace header. It reports whether the trace was retained, in
// which case the caller links the latency histogram bucket to the trace
// ID as an exemplar.
func (s *Server) tailDecision(cap *obs.Capture, rid, route string, status int, start time.Time, elapsed time.Duration, remote, forced bool) bool {
	slow := s.recorder.ObserveLatency(elapsed)
	var reasons []string
	if status >= http.StatusBadRequest {
		reasons = append(reasons, flight.ReasonError)
	}
	if slow {
		reasons = append(reasons, flight.ReasonSlow)
	}
	reasons = append(reasons, cap.Marks()...)
	if remote {
		reasons = append(reasons, flight.ReasonPropagated)
	}
	if forced {
		reasons = append(reasons, flight.ReasonForced)
	}
	if len(reasons) == 0 {
		return false
	}
	s.recorder.Retain(&flight.Trace{
		TraceID: cap.TraceID(), RID: rid, Route: route, Status: status,
		Start: start, Dur: elapsed, Reasons: reasons,
		RemoteParent: cap.RemoteParent(),
		Spans:        cap.Spans(), SpansDropped: cap.Dropped(),
	})
	for _, reason := range reasons {
		s.reg.Counter("flight_retained:" + reason).Inc()
	}
	return true
}

// handleFlightRecorder serves GET /v1/debug/flightrecorder: the
// recorder's aggregate stats, the retained traces newest-first (summary
// lines — fetch a full span tree via /v1/debug/trace), and the recent
// notable events. ?format=chrome instead merges every retained trace
// into one Chrome trace_event document, each trace on its own lane
// group, positioned on a shared wall-clock axis.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	traces := s.recorder.Traces()
	switch r.URL.Query().Get("format") {
	case "", "json":
		sums := make([]flight.Summary, len(traces))
		for i, t := range traces {
			sums[i] = t.Summary()
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"stats":  s.recorder.Stats(),
			"traces": sums,
			"events": s.recorder.Events(),
		})
	case "chrome":
		var origin time.Time
		for _, t := range traces {
			if origin.IsZero() || t.Start.Before(origin) {
				origin = t.Start
			}
		}
		var spans []obs.SpanRecord
		for i, t := range traces {
			laneBase := uint64(i+1) << 32
			shift := t.Start.Sub(origin)
			for _, sp := range t.Spans {
				sp.Lane += laneBase
				sp.Start += shift
				spans = append(spans, sp)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeSpans(w, spans)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", r.URL.Query().Get("format")))
	}
}

// handleDebugTrace serves GET /v1/debug/trace?rid=...|tid=...: one
// retained trace with its full span tree, as JSON or as a Chrome
// trace_event document with ?format=chrome. A batch item rid
// ("<batch-rid>-<i>") resolves to its batch's trace. 404 means the
// request either was never retained (it wasn't interesting — see
// docs/OBSERVABILITY.md for the retention policy) or has been evicted
// from the ring.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	rid, tid := q.Get("rid"), q.Get("tid")
	if rid == "" && tid == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("one of rid= or tid= is required"))
		return
	}
	t := s.recorder.Lookup(rid, tid)
	if t == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no retained trace for rid=%q tid=%q", rid, tid))
		return
	}
	switch q.Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, t)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeSpans(w, t.Spans)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", q.Get("format")))
	}
}
