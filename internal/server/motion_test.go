package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"policyanon/internal/motion"
)

// newMotionServer builds a server with streaming ingest armed; the
// pipeline itself starts when the test installs a snapshot.
func newMotionServer(t *testing.T, cfg motion.Config) (*Server, string) {
	t.Helper()
	srv := New()
	srv.EnableMotion(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL
}

// seedLoc is the location installSnapshot gives user i.
func seedLoc(i int) (int32, int32) {
	return int32((i * 13) % 64), int32((i * 29) % 64)
}

// motionStats polls GET /v1/motion and returns the stats object.
func motionStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, body := get(t, base+"/v1/motion")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("motion: %d %v", resp.StatusCode, body)
	}
	if body["enabled"] != true {
		t.Fatalf("motion not enabled: %v", body)
	}
	return body["stats"].(map[string]any)
}

// waitEpoch blocks until the pipeline's published epoch reaches at
// least want (the queue may still hold unapplied updates).
func waitEpoch(t *testing.T, base string, want float64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := motionStats(t, base)
		if st["epoch"].(float64) >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch %v never reached %v", st["epoch"], want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMotionStreamingStatuses(t *testing.T) {
	srv, base := newMotionServer(t, motion.Config{
		MaxBatch:      8,
		FlushInterval: time.Millisecond,
		MaxMoveMeters: 10,
	})
	installSnapshot(t, base, 5)
	if srv.MotionPipeline() == nil {
		t.Fatal("pipeline not started by snapshot install")
	}

	// Valid bounded move → 202 Accepted.
	x, y := seedLoc(7)
	resp, body := post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u07", X: float64(x + 2), Y: float64(y + 1)},
	}})
	if resp.StatusCode != http.StatusAccepted || body["queued"].(float64) != 1 {
		t.Fatalf("valid move: %d %v", resp.StatusCode, body)
	}

	// Boundary rejections → 400 with a machine-readable reason.
	cases := []struct {
		name   string
		move   MoveUpdateJSON
		reason string
	}{
		{"unknown user", MoveUpdateJSON{ID: "ghost", X: 1, Y: 1}, motion.ReasonUnknownUser},
		{"out of bounds", MoveUpdateJSON{ID: "u03", X: 999, Y: 1}, motion.ReasonOutOfBounds},
		{"negative", MoveUpdateJSON{ID: "u03", X: -4, Y: 1}, motion.ReasonOutOfBounds},
		{"motion bound", func() MoveUpdateJSON {
			ux, uy := seedLoc(5) // (1,17): +50 stays in bounds but breaks the 10 m bound
			return MoveUpdateJSON{ID: "u05", X: float64(ux) + 50, Y: float64(uy)}
		}(), motion.ReasonSpeed},
	}
	for _, tc := range cases {
		resp, body := post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{tc.move}})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d %v", tc.name, resp.StatusCode, body)
		}
		if body["reason"] != tc.reason {
			t.Fatalf("%s: reason %v, want %s", tc.name, body["reason"], tc.reason)
		}
	}

	// Non-finite coordinates cannot survive JSON decoding; the decode
	// boundary itself rejects them before the pipeline is consulted.
	raw, err := http.Post(base+"/v1/moves", "application/json",
		bytes.NewReader([]byte(`{"moves":[{"id":"u07","x":NaN,"y":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Fatalf("NaN literal: %d", raw.StatusCode)
	}

	// The applied move is visible to the serving path: epoch advances and
	// the cloak covers the new position.
	st := waitEpoch(t, base, 2)
	if st["rejected"].(float64) != 4 {
		t.Fatalf("rejected = %v, want 4", st["rejected"])
	}
	resp, body = get(t, base+"/v1/cloak?user=u07")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cloak after move: %d %v", resp.StatusCode, body)
	}
	cloak := body["cloak"].(map[string]any)
	if cloak["minX"].(float64) > float64(x+2) || cloak["maxX"].(float64) < float64(x+2) {
		t.Fatalf("cloak %v does not cover moved location", cloak)
	}
}

func TestMotionBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	var swaps atomic.Int64
	_, base := newMotionServer(t, motion.Config{
		QueueCapacity: 4,
		MaxBatch:      1,
		FlushInterval: time.Hour,
		Policy:        motion.Drop,
		MaxMoveMeters: -1,
		OnSwap: func(*motion.Snapshot) {
			if swaps.Add(1) > 1 { // call 1 is the initial publish
				<-gate
			}
		},
	})
	t.Cleanup(func() { close(gate) })
	installSnapshot(t, base, 5)

	// First move: consumed by the loop, which then parks inside the swap
	// callback — the queue is now empty and nothing drains it.
	resp, body := post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u00", X: 5, Y: 5},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first move: %d %v", resp.StatusCode, body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for motionStats(t, base)["queueDepth"].(float64) != 0 || swaps.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("loop never consumed the first move")
		}
		time.Sleep(time.Millisecond)
	}

	// Fill the queue to exact capacity, then one more → 429.
	moves := make([]MoveUpdateJSON, 4)
	for i := range moves {
		moves[i] = MoveUpdateJSON{ID: fmt.Sprintf("u%02d", i+1), X: 6, Y: 6}
	}
	resp, body = post(t, base+"/v1/moves", StreamMovesRequest{Moves: moves})
	if resp.StatusCode != http.StatusAccepted || body["queued"].(float64) != 4 {
		t.Fatalf("fill: %d %v", resp.StatusCode, body)
	}
	resp, body = post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u09", X: 7, Y: 7},
	}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d %v", resp.StatusCode, body)
	}
	if body["queued"].(float64) != 0 {
		t.Fatalf("overflow queued = %v", body["queued"])
	}
	if st := motionStats(t, base); st["dropped"].(float64) != 1 {
		t.Fatalf("dropped = %v, want 1", st["dropped"])
	}
}

func TestMotionDrainAndShutdownOrdering(t *testing.T) {
	var checkpoints atomic.Int64
	srv, base := newMotionServer(t, motion.Config{
		MaxBatch:      64,
		FlushInterval: time.Hour, // only the drain flushes
		MaxMoveMeters: -1,
		Checkpoint: func(*motion.Snapshot) error {
			checkpoints.Add(1)
			return nil
		},
	})
	installSnapshot(t, base, 5)

	resp, body := post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u00", X: 40, Y: 40},
		{ID: "u01", X: 41, Y: 41},
	}})
	if resp.StatusCode != http.StatusAccepted || body["queued"].(float64) != 2 {
		t.Fatalf("moves: %d %v", resp.StatusCode, body)
	}

	// Drain: the queued batch must be applied, then checkpointed, even
	// though no flush trigger ever fired.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.DrainMotion(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := checkpoints.Load(); n != 1 {
		t.Fatalf("final checkpoints = %d, want 1", n)
	}
	p := srv.MotionPipeline()
	if st := p.Stats(); st.Moves != 2 || !st.Closed {
		t.Fatalf("post-drain stats: %+v", st)
	}

	// The drained state is what CheckpointTo persists: restore it into a
	// fresh server and the moved position must be there.
	var buf bytes.Buffer
	if err := srv.CheckpointTo(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored := New()
	if err := restored.RestoreFrom(&buf); err != nil {
		t.Fatalf("restore: %v", err)
	}
	cloak, err := restored.policy.CloakOf("u00")
	if err != nil {
		t.Fatal(err)
	}
	if cloak.MinX > 40 || cloak.MaxX < 40 || cloak.MinY > 40 || cloak.MaxY < 40 {
		t.Fatalf("restored cloak %+v does not cover drained move", cloak)
	}

	// After the drain the ingest boundary answers 503.
	resp, body = post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u02", X: 9, Y: 9},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain move: %d %v", resp.StatusCode, body)
	}
	// Draining again is a no-op.
	if err := srv.DrainMotion(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestMotionConcurrentRequests is the ISSUE acceptance check at the HTTP
// layer: /v1/request keeps answering — with consistent cloaks — while
// the maintenance loop applies streamed batches. Readers query users
// u00–u19 at their fixed seed locations; the churn moves only u20–u39,
// so a reader's reported location always stays inside its (k-anonymous,
// hence covering) cloak no matter which snapshot epoch serves it.
func TestMotionConcurrentRequests(t *testing.T) {
	_, base := newMotionServer(t, motion.Config{
		MaxBatch:      16,
		FlushInterval: time.Millisecond,
	})
	installSnapshot(t, base, 5)
	installPOIs(t, base)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, failures atomic.Int64
	var firstErr atomic.Value
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := (i*3 + r) % 20
				x, y := seedLoc(u)
				payload, _ := json.Marshal(ServiceRequestJSON{
					User: fmt.Sprintf("u%02d", u), X: x, Y: y,
				})
				resp, err := http.Post(base+"/v1/request", "application/json", bytes.NewReader(payload))
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("request: %v", err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					var out map[string]any
					_ = json.NewDecoder(resp.Body).Decode(&out)
					failures.Add(1)
					firstErr.CompareAndSwap(nil, fmt.Sprintf("request %d: %v", resp.StatusCode, out))
				}
				resp.Body.Close()
				reads.Add(1)
			}
		}(r)
	}

	// Churn u20–u39 between two fixed in-bounds positions, waiting for
	// each round's batch to publish so applies interleave with reads.
	var epoch float64 = 1
	for round := 0; round < 8; round++ {
		moves := make([]MoveUpdateJSON, 20)
		for i := range moves {
			x, y := seedLoc(i + 20)
			off := float64((round % 2) * 3)
			moves[i] = MoveUpdateJSON{
				ID: fmt.Sprintf("u%02d", i+20),
				X:  float64(x%60) + off, Y: float64(y%60) + off,
			}
		}
		resp, body := post(t, base+"/v1/moves", StreamMovesRequest{Moves: moves})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("round %d: %d %v", round, resp.StatusCode, body)
		}
		st := waitEpoch(t, base, epoch+1)
		epoch = st["epoch"].(float64)
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed requests during applies; first: %v", n, firstErr.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	// The last round's tail batch may still be in flight; wait it out.
	deadline := time.Now().Add(30 * time.Second)
	st := motionStats(t, base)
	for st["moves"].(float64) != 160 {
		if time.Now().After(deadline) {
			t.Fatalf("churn accounting: %v", st)
		}
		time.Sleep(time.Millisecond)
		st = motionStats(t, base)
	}
	if st["batches"].(float64) == 0 {
		t.Fatalf("churn accounting: %v", st)
	}
	// Serving stats reflect pull-based adoption of the live pipeline.
	_, stats := get(t, base+"/v1/stats")
	if stats["movesApplied"].(float64) != 160 {
		t.Fatalf("adopted movesApplied = %v, want 160", stats["movesApplied"])
	}
}

// TestLegacyMovesBoundsMetric: with motion disabled the synchronous
// /v1/moves path still validates bounds at the server boundary and
// accounts rejections under a distinct metric.
func TestLegacyMovesBoundsMetric(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	installSnapshot(t, ts.URL, 5)
	resp, body := post(t, ts.URL+"/v1/moves", MovesRequest{Moves: []UserJSON{{ID: "u01", X: 999, Y: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-bounds move: %d %v", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(metrics.Bytes(), []byte(`"moves_rejected:bounds":1`)) {
		t.Fatalf("bounds rejection metric missing from /v1/metrics:\n%s", metrics.String())
	}
}
