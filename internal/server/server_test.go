package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func installSnapshot(t *testing.T, base string, k int) {
	t.Helper()
	users := []UserJSON{}
	for i := 0; i < 40; i++ {
		users = append(users, UserJSON{
			ID: fmt.Sprintf("u%02d", i),
			X:  int32((i * 13) % 64), Y: int32((i * 29) % 64),
		})
	}
	resp, body := post(t, base+"/v1/snapshot", SnapshotRequest{K: k, MapSide: 64, Users: users})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, body)
	}
	if body["users"].(float64) != 40 {
		t.Fatalf("snapshot users = %v", body["users"])
	}
	if body["policyCost"].(float64) <= 0 {
		t.Fatalf("snapshot policyCost = %v", body["policyCost"])
	}
}

func installPOIs(t *testing.T, base string) {
	t.Helper()
	resp, body := post(t, base+"/v1/pois", map[string]any{
		"mapSide": 64,
		"pois": []POIJSON{
			{ID: "gas1", X: 10, Y: 10, Category: "gas"},
			{ID: "gas2", X: 50, Y: 50, Category: "gas"},
			{ID: "rest1", X: 30, Y: 30, Category: "rest"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pois: %d %v", resp.StatusCode, body)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	// Liveness: always 200, even before a snapshot.
	resp, body := get(t, ts.URL+"/healthz?probe=live")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("liveness: %d %v", resp.StatusCode, body)
	}
	// Readiness: 503 until the first snapshot is installed.
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("readiness before snapshot: %d %v", resp.StatusCode, body)
	}
	installSnapshot(t, ts.URL, 5)
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["ready"] != true {
		t.Fatalf("readiness after snapshot: %d %v", resp.StatusCode, body)
	}
	if body["users"].(float64) != 40 || body["k"].(float64) != 5 {
		t.Fatalf("readiness facts: %v", body)
	}
}

func TestSnapshotAndCloakLookup(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	resp, body := get(t, ts.URL+"/v1/cloak?user=u07")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cloak: %d %v", resp.StatusCode, body)
	}
	cloak := body["cloak"].(map[string]any)
	if cloak["maxX"].(float64) <= cloak["minX"].(float64) {
		t.Fatalf("degenerate cloak %v", cloak)
	}
	// Unknown user is a 404.
	resp, _ = get(t, ts.URL+"/v1/cloak?user=nobody")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user: %d", resp.StatusCode)
	}
	// Missing parameter is a 400.
	resp, _ = get(t, ts.URL+"/v1/cloak")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing user: %d", resp.StatusCode)
	}
}

func TestCloakBeforeSnapshot(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := get(t, ts.URL+"/v1/cloak?user=u01")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("expected 409, got %d", resp.StatusCode)
	}
}

func TestSnapshotValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []SnapshotRequest{
		{K: 0, MapSide: 64},
		{K: 2, MapSide: 0},
		{K: 2, MapSide: 64, Users: []UserJSON{{ID: "a", X: 1, Y: 1}, {ID: "a", X: 2, Y: 2}}},
		{K: 2, MapSide: 64, Users: []UserJSON{{ID: "a", X: 99, Y: 1}, {ID: "b", X: 2, Y: 2}}},
	}
	for i, c := range cases {
		resp, _ := post(t, ts.URL+"/v1/snapshot", c)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("case %d accepted", i)
		}
	}
	// Fewer than k users: 422.
	resp, _ := post(t, ts.URL+"/v1/snapshot", SnapshotRequest{
		K: 5, MapSide: 64, Users: []UserJSON{{ID: "a", X: 1, Y: 1}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("insufficient users: %d", resp.StatusCode)
	}
}

func TestRequestEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)
	resp, body := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u03", X: 39, Y: 23})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %v", resp.StatusCode, body)
	}
	if body["candidates"] == nil {
		t.Fatalf("no candidates: %v", body)
	}
	// Identical request from another group member hits the cache.
	_, stats := get(t, ts.URL+"/v1/stats")
	if stats["requestsServed"].(float64) != 1 {
		t.Fatalf("stats %v", stats)
	}
}

func TestRequestBeforeSetup(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u01"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("expected 409, got %d", resp.StatusCode)
	}
	installSnapshot(t, ts.URL, 5)
	// POIs still missing.
	resp, _ = post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u01"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("expected 409 without POIs, got %d", resp.StatusCode)
	}
}

func TestRequestSpoofedLocationRejected(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)
	resp, _ := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u03", X: 1, Y: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("spoofed location: %d", resp.StatusCode)
	}
}

func TestPOIValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/pois", map[string]any{"mapSide": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mapSide 0: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/pois", map[string]any{
		"mapSide": 16,
		"pois":    []POIJSON{{ID: "x", X: 99, Y: 99}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-bounds POI: %d", resp.StatusCode)
	}
}

func TestMovesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	// Move two users; the policy must be maintained incrementally.
	resp, body := post(t, ts.URL+"/v1/moves", MovesRequest{Moves: []UserJSON{
		{ID: "u03", X: 10, Y: 10},
		{ID: "u07", X: 60, Y: 60},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moves: %d %v", resp.StatusCode, body)
	}
	if body["policyCost"].(float64) <= 0 {
		t.Fatalf("moves response %v", body)
	}
	// The cloak lookup reflects the new position.
	resp, body = get(t, ts.URL+"/v1/cloak?user=u03")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cloak after move: %d", resp.StatusCode)
	}
	cloak := body["cloak"].(map[string]any)
	if cloak["minX"].(float64) > 10 || cloak["maxX"].(float64) < 10 {
		t.Fatalf("cloak %v does not cover the new location", cloak)
	}
	// Unknown user and missing snapshot are rejected.
	resp, _ = post(t, ts.URL+"/v1/moves", MovesRequest{Moves: []UserJSON{{ID: "ghost", X: 1, Y: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ghost move: %d", resp.StatusCode)
	}
	fresh := newTestServer(t)
	resp, _ = post(t, fresh.URL+"/v1/moves", MovesRequest{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("moves without snapshot: %d", resp.StatusCode)
	}
	// Out-of-bounds move rejected.
	resp, _ = post(t, ts.URL+"/v1/moves", MovesRequest{Moves: []UserJSON{{ID: "u01", X: 999, Y: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-bounds move: %d", resp.StatusCode)
	}
	// Stats reflect the maintenance work.
	_, stats := get(t, ts.URL+"/v1/stats")
	if stats["movesApplied"].(float64) < 2 {
		t.Fatalf("stats %v", stats)
	}
}

func TestCheckpointSaveRestore(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	// Download the checkpoint.
	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint download: %d %v", resp.StatusCode, err)
	}
	// Restore into a fresh server.
	fresh := newTestServer(t)
	resp2, err := http.Post(fresh.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d", resp2.StatusCode)
	}
	// The restored server answers cloak lookups identically.
	_, a := get(t, ts.URL+"/v1/cloak?user=u07")
	_, b := get(t, fresh.URL+"/v1/cloak?user=u07")
	ac, bc := a["cloak"].(map[string]any), b["cloak"].(map[string]any)
	for _, f := range []string{"minX", "minY", "maxX", "maxY"} {
		if ac[f] != bc[f] {
			t.Fatalf("restored cloak differs on %s: %v vs %v", f, ac, bc)
		}
	}
	// Moves work after restore (matrix rebuilt lazily).
	resp3, body := post(t, fresh.URL+"/v1/moves", MovesRequest{Moves: []UserJSON{{ID: "u01", X: 5, Y: 5}}})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("moves after restore: %d %v", resp3.StatusCode, body)
	}
	// Corrupt restore rejected.
	blob[len(blob)/2] ^= 0xFF
	resp4, err := http.Post(fresh.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode == http.StatusOK {
		t.Fatal("corrupt checkpoint accepted")
	}
	// Checkpoint of an empty server is a 409.
	empty := newTestServer(t)
	resp5, err := http.Get(empty.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusConflict {
		t.Fatalf("empty checkpoint: %d", resp5.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	get(t, ts.URL+"/healthz")
	resp, body := get(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	counters := body["counters"].(map[string]any)
	if counters["requests:POST /v1/snapshot"].(float64) < 1 {
		t.Fatalf("snapshot requests not counted: %v", counters)
	}
	if counters["requests:GET /healthz"].(float64) < 1 {
		t.Fatalf("healthz requests not counted: %v", counters)
	}
	hists := body["histograms"].(map[string]any)
	if _, ok := hists["latency:POST /v1/snapshot"]; !ok {
		t.Fatalf("snapshot latency not recorded: %v", hists)
	}
}

// TestServerPrometheusExposition locks the /v1/metrics?format=prometheus
// contract: valid text exposition (v0.0.4) carrying the per-route request
// counters and latency histograms plus the per-phase anonymization
// timings recorded by the server's tracer.
func TestServerPrometheusExposition(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)
	resp, body := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u03", X: 39, Y: 23})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %v", resp.StatusCode, body)
	}

	promResp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	if promResp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus metrics: %d", promResp.StatusCode)
	}
	if ct := promResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(promResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Every non-comment line must match the exposition grammar.
	lineRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Request accounting, latency histograms, and span-derived phase
	// timings must all be present.
	for _, want := range []string{
		`policyanon_requests_total{name="POST /v1/snapshot"} `,
		`policyanon_requests_total{name="POST /v1/request"} `,
		`policyanon_latency_seconds_count{name="POST /v1/snapshot"} `,
		`policyanon_latency_seconds_bucket{name="POST /v1/snapshot",le="+Inf"} `,
		`policyanon_phase_seconds_count{name="bulkdp.build"} `,
		`policyanon_phase_seconds_count{name="csp.serve"} `,
		`policyanon_phase_spans_total{name="bulkdp.build"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Unknown formats are rejected.
	badResp, err := http.Get(ts.URL + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml: %d, want 400", badResp.StatusCode)
	}
}
