// Package server exposes the anonymizing CSP as a JSON-over-HTTP service,
// the deployable component behind cmd/anonserver. One server instance
// plays the role of a single anonymization server of Section V; a fleet of
// them, one per jurisdiction, forms the parallel deployment.
//
// Endpoints:
//
//	GET  /healthz              readiness probe (?probe=live for liveness)
//	GET  /v1/engines           list registered anonymization engines
//	POST /v1/snapshot          install a location snapshot and compute a
//	                           cloaking policy (engine selectable per
//	                           request via ?engine= or the body field)
//	POST /v1/moves             apply user movement for the next snapshot
//	                           and maintain the policy (incrementally for
//	                           engines that support it)
//	POST /v1/pois              install the point-of-interest catalogue
//	GET  /v1/cloak?user=ID     look up a user's cloak under the policy
//	                           (&engine=NAME serves an alternative engine's
//	                           policy over the same snapshot)
//	POST /v1/request           anonymize a service request and answer it
//	POST /v1/request/batch     anonymize and answer many requests in one
//	                           round trip: one snapshot acquisition,
//	                           parallel per-user resolution, per-item
//	                           errors (identical concurrent lookups
//	                           coalesce into one provider round trip)
//	GET  /v1/audit             rolling privacy report: achieved anonymity
//	                           under both attacker classes, breach totals
//	GET  /v1/audit/root        latest sealed ledger checkpoint: the signed
//	                           Merkle chain root over all audit events
//	                           (404 until the ledger is enabled and has
//	                           sealed a batch)
//	GET  /v1/audit/proof?seq=N Merkle inclusion proof for audit event N,
//	                           verifiable offline against the chain root
//	                           (409 while the event is pending a seal,
//	                           410 when its batch aged out of retention)
//	GET  /v1/motion            streaming-ingest pipeline statistics
//	                           ({"enabled": false} when motion is off)
//	GET  /v1/checkpoint        stream the current state as a checkpoint
//	POST /v1/restore           install a previously saved checkpoint
//	GET  /v1/stats             snapshot, policy, cache and coalescing
//	                           statistics
//	GET  /v1/metrics           metrics registry (JSON; ?format=prometheus
//	                           for text exposition), pprof on the side mux
//	GET  /v1/debug/flightrecorder  flight recorder dump: stats, retained
//	                           trace summaries, notable events (JSON;
//	                           ?format=chrome for a chrome://tracing view
//	                           of every retained trace)
//	GET  /v1/debug/trace       one retained trace with its full span tree,
//	                           by ?rid= (request ID, batch item IDs
//	                           included) or ?tid= (trace ID); JSON or
//	                           ?format=chrome
//
// /healthz is a readiness probe: it answers 503 until the first snapshot
// is installed, 200 with snapshot facts afterwards. /healthz?probe=live
// is pure liveness and always answers 200.
//
// Every request is tagged with a request ID (the incoming X-Request-ID
// header, or a freshly minted one), echoed in the response X-Request-ID
// header, carried down the context, stamped on audit breach log lines and
// trace spans, and forwarded by the cluster coordinator to its shard
// RPCs — one ID correlates a request across log, trace, and metric on
// every server that touched it.
//
// The serving routes (/v1/request and /v1/request/batch) additionally
// run an always-on tracing layer: each request opens an obs.Capture with
// a trace ID (the incoming X-Trace-Id, or a minted one, echoed in the
// response), and at request end tail-based sampling retains the span
// tree of interesting requests — slow against the flight recorder's
// rolling p99-derived threshold, status >= 400, audit breaches, motion
// fallbacks, CSP cache-miss flights, propagated cluster legs, or forced
// with an X-Debug-Trace header — into the flight recorder the debug
// endpoints serve. Latency histograms carry the retained trace ID as an
// exemplar, linking any latency spike to a concrete trace.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/audit"
	"policyanon/internal/checkpoint"
	"policyanon/internal/core"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/ledger"
	"policyanon/internal/location"
	"policyanon/internal/metrics"
	"policyanon/internal/motion"
	"policyanon/internal/obs"
	"policyanon/internal/obs/flight"
)

// Server is the HTTP anonymization service. Create with New and mount via
// Handler.
type Server struct {
	mu         sync.RWMutex
	k          int
	bounds     geo.Rect
	db         *location.DB
	anon       *core.Anonymizer // non-nil only for incremental engines
	policy     *lbs.Assignment
	csp        *lbs.CSP
	provider   *lbs.POIProvider
	stats      Stats
	reg        *metrics.Registry
	tracer     *obs.Tracer
	aud        *audit.Auditor
	logger     *slog.Logger
	engineName string // default engine; "" means engine.DefaultName
	snapEngine string // engine that produced the installed policy
	// snapOpts carries the engine options the installed snapshot was
	// anonymized with (e.g. the "workers" DP parallelism budget), so
	// post-snapshot recomputations — checkpoint-restore rebuilds, move
	// replays, per-request engine switches — run under the same options.
	snapOpts map[string]string
	// enginePolicies caches alternative engines' policies over the
	// current snapshot, so /v1/cloak?engine=NAME can serve several
	// engines per-request in one process. Invalidated whenever the
	// snapshot changes.
	enginePolicies map[string]*lbs.Assignment

	// motionCfg, when non-nil, arms streaming movement ingest
	// (EnableMotion); pipeline is the live instance, created when a
	// snapshot installs. lastEpoch is the pipeline epoch the serving
	// state last adopted — the lock-free fast path of refreshMotion.
	motionCfg *motion.Config
	pipeline  *motion.Pipeline
	lastEpoch atomic.Int64

	// led, when set via EnableLedger, is the tamper-evident audit ledger
	// behind /v1/audit/root and /v1/audit/proof. Atomic: the serving path
	// reads it without touching s.mu.
	led atomic.Pointer[ledger.Ledger]

	// recorder is the always-on flight recorder behind tail-based request
	// sampling (GET /v1/debug/flightrecorder); traceReqs gates the
	// per-request capture machinery — off, serving runs exactly as before
	// this layer existed, which is what the trace benchmark compares.
	recorder  *flight.Recorder
	traceReqs atomic.Bool
}

// Stats reports the server's state.
type Stats struct {
	Users          int     `json:"users"`
	K              int     `json:"k"`
	Engine         string  `json:"engine,omitempty"`
	PolicyCost     int64   `json:"policyCost"`
	AvgCloakArea   float64 `json:"avgCloakArea"`
	AnonymizeMs    float64 `json:"anonymizeMs"`
	POIs           int     `json:"pois"`
	RequestsServed int64   `json:"requestsServed"`
	BatchesServed  int64   `json:"batchesServed"`
	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	// CoalesceFlights counts provider lookups started by a singleflight
	// leader; CoalesceCoalesced counts requests that shared another
	// request's in-flight lookup instead of issuing their own.
	CoalesceFlights   int64   `json:"coalesceFlights"`
	CoalesceCoalesced int64   `json:"coalesceCoalesced"`
	MovesApplied      int64   `json:"movesApplied"`
	RowsRecomputed    int64   `json:"rowsRecomputed"`
	MaintenanceMs     float64 `json:"maintenanceMs"`
	// Live motion-pipeline gauges (zero when streaming ingest is off), so
	// /v1/stats alone gives the full serving picture without /v1/motion.
	MotionEpoch      int64 `json:"motionEpoch"`
	MotionQueueDepth int   `json:"motionQueueDepth"`
	MotionFallbacks  int64 `json:"motionFallbacks"`
}

// New returns an empty server; install a snapshot before serving requests.
// The server traces every anonymization and serve phase into its metrics
// registry (span retention stays off: a long-running server keeps
// aggregates and histograms, not trace buffers).
func New() *Server {
	reg := metrics.NewRegistry()
	tracer := obs.NewTracer()
	tracer.KeepSpans(false)
	tracer.SetRegistry(reg)
	aud := audit.New(reg, audit.Options{
		Rate: audit.DefaultRate,
		// Breaches of engines that honestly register PolicyAware=false
		// are expected (Proposition 3); unknown engines are held to the
		// full policy-aware standard, mirroring WithVerify.
		ExpectPolicyAware: func(name string) bool {
			info, ok := engine.InfoOf(name)
			return !ok || info.PolicyAware
		},
	})
	rec := flight.New(0, 0)
	aud.SetFlight(rec)
	s := &Server{reg: reg, tracer: tracer, aud: aud, recorder: rec}
	s.traceReqs.Store(true)
	return s
}

// SetDefaultEngine selects the engine used when a snapshot request names
// none. The name must be registered.
func (s *Server) SetDefaultEngine(name string) error {
	if _, err := engine.Get(name); err != nil {
		return err
	}
	s.mu.Lock()
	s.engineName = name
	s.mu.Unlock()
	return nil
}

// DefaultEngine returns the server's default engine name.
func (s *Server) DefaultEngine() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.engineName == "" {
		return engine.DefaultName
	}
	return s.engineName
}

// Metrics exposes the server's registry (shared with the phase tracer).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Auditor exposes the server's privacy observatory.
func (s *Server) Auditor() *audit.Auditor { return s.aud }

// SetAuditRate sets the fraction of served /v1/request calls audited for
// achieved anonymity (0 disables request sampling; policy installs are
// always audited).
func (s *Server) SetAuditRate(rate float64) { s.aud.SetRate(rate) }

// SetLogger installs a structured logger: per-request access records at
// Debug, audit breach records at Warn, each carrying the request ID.
func (s *Server) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	s.logger = l
	s.mu.Unlock()
	s.aud.SetLogger(l)
}

// Logger returns the installed structured logger, or nil.
func (s *Server) Logger() *slog.Logger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.logger
}

// Tracer exposes the server's phase tracer, e.g. to print a phase table
// on shutdown.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// FlightRecorder exposes the server's flight recorder — the retention
// side of tail-based request sampling.
func (s *Server) FlightRecorder() *flight.Recorder { return s.recorder }

// SetFlightRecorder replaces the flight recorder (to resize its rings
// before serving). It re-points the auditor's breach-event sink too.
func (s *Server) SetFlightRecorder(rec *flight.Recorder) {
	if rec == nil {
		return
	}
	s.recorder = rec
	s.aud.SetFlight(rec)
}

// SetRequestTracing toggles the always-on per-request capture layer.
// Off, serving skips trace-context minting, root spans, and tail
// sampling entirely — the baseline leg of the trace overhead benchmark.
func (s *Server) SetRequestTracing(on bool) { s.traceReqs.Store(on) }

// RequestTracing reports whether per-request tracing is enabled.
func (s *Server) RequestTracing() bool { return s.traceReqs.Load() }

// obsCtx threads the server's tracer into a request-scoped context. When
// instrument already installed it (traced serving routes carry a capture
// and a root span), the request context is returned unchanged so the
// handler's spans stay inside the request's call tree.
func (s *Server) obsCtx(r *http.Request) context.Context {
	ctx := r.Context()
	if obs.TracerFrom(ctx) == s.tracer {
		return ctx
	}
	return obs.WithTracer(ctx, s.tracer)
}

// Handler returns the HTTP handler tree. Every endpoint is wrapped with
// per-route request counting and latency histograms, exported at
// /v1/metrics (JSON by default, Prometheus text exposition with
// ?format=prometheus).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/audit", s.handleAudit)
	mux.HandleFunc("GET /v1/audit/root", s.handleAuditRoot)
	mux.HandleFunc("GET /v1/audit/proof", s.handleAuditProof)
	mux.HandleFunc("GET /v1/engines", s.handleEngines)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/moves", s.handleMoves)
	mux.HandleFunc("POST /v1/pois", s.handlePOIs)
	mux.HandleFunc("GET /v1/checkpoint", s.handleCheckpointSave)
	mux.HandleFunc("POST /v1/restore", s.handleCheckpointRestore)
	mux.HandleFunc("GET /v1/cloak", s.handleCloak)
	mux.HandleFunc("POST /v1/request", s.handleRequest)
	mux.HandleFunc("POST /v1/request/batch", s.handleRequestBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/motion", s.handleMotion)
	mux.HandleFunc("GET /v1/debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /v1/debug/trace", s.handleDebugTrace)
	return s.instrument(mux)
}

// handleHealthz answers readiness by default — 503 until the first
// snapshot is installed — and pure liveness with ?probe=live (always
// 200). Load balancers and the cluster coordinator use the liveness form
// to tell a crashed worker from one merely awaiting its shard.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("probe") == "live" {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	s.mu.RLock()
	ready := s.policy != nil
	users, k := s.stats.Users, s.stats.K
	s.mu.RUnlock()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting", "ready": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "ready": true, "users": users, "k": k})
}

// handleAudit serves the privacy observatory's rolling report.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.aud.Report())
}

// statusRecorder captures the response status for access logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// tracedRoute reports whether route gets the always-on per-request
// capture: the serving hot paths, where tail sampling pays for itself.
func tracedRoute(route string) bool {
	return route == "POST /v1/request" || route == "POST /v1/request/batch"
}

// instrument wraps the handler tree with per-route metrics and request-ID
// correlation: the incoming X-Request-ID (or a minted one) is carried in
// the request context — where audit breach logs and spans pick it up —
// and echoed in the response header.
//
// On the serving routes it also runs the always-on tracing layer: a
// capture and a root span are opened per request (adopting an incoming
// X-Trace-ID, so cluster shard legs join their coordinator's trace), and
// at request end the tail-sampling decision either retains the full span
// tree into the flight recorder or discards it, leaving only aggregates.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = audit.MintRequestID()
		}
		ctx := audit.WithRequestID(r.Context(), rid)
		route := r.Method + " " + r.URL.Path

		var cap *obs.Capture
		var root *obs.Span
		remote := false
		if s.traceReqs.Load() && tracedRoute(route) {
			tid := r.Header.Get(flight.TraceIDHeader)
			remote = tid != ""
			if tid == "" {
				tid = flight.MintTraceID()
			}
			cap = obs.NewCapture(tid, 0)
			if remote {
				if pp, err := strconv.ParseUint(r.Header.Get(flight.ParentSpanHeader), 10, 64); err == nil {
					cap.SetRemoteParent(pp)
				}
			}
			ctx, root = obs.StartRootCaptured(ctx, s.tracer, cap, "http.request")
			root.SetAttr("route", route)
			root.SetAttr("rid", rid)
			w.Header().Set(flight.TraceIDHeader, tid)
		}
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", rid)
		s.reg.Counter("requests:" + route).Inc()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		exemplar := ""
		if cap != nil {
			root.SetAttr("status", statusLabel(rec.status))
			root.End()
			forced := r.Header.Get(flight.ForceHeader) != ""
			if s.tailDecision(cap, rid, route, rec.status, start, elapsed, remote, forced) {
				exemplar = cap.TraceID()
			}
		}
		s.reg.Histogram("latency:"+route).ObserveExemplar(elapsed, exemplar)
		if l := s.Logger(); l != nil {
			l.LogAttrs(r.Context(), slog.LevelDebug, "request",
				slog.String("rid", rid),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Float64("ms", float64(elapsed.Microseconds())/1000),
			)
		}
	})
}

// statusLabel renders an HTTP status for a span attribute without a
// per-request formatting allocation on the common codes.
func statusLabel(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusConflict:
		return "409"
	case http.StatusInternalServerError:
		return "500"
	}
	return strconv.Itoa(code)
}

// handleMetrics exports the registry: JSON snapshot by default, or
// Prometheus text exposition format 0.0.4 with ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, s.reg.Snapshot())
	case "prometheus":
		w.Header().Set("Content-Type", metrics.ContentTypePrometheus)
		w.WriteHeader(http.StatusOK)
		if err := s.reg.WritePrometheus(w); err != nil {
			// Headers are out; nothing better to do than note it inline.
			fmt.Fprintf(w, "\n# exposition error: %v\n", err)
		}
	default:
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json or prometheus)", r.URL.Query().Get("format")))
	}
}

// handleEngines lists every registered engine with its capability flags,
// plus this server's default.
func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"default": s.DefaultEngine(),
		"engines": engine.Infos(),
	})
}

// UserJSON is one location-database row on the wire.
type UserJSON struct {
	ID string `json:"id"`
	X  int32  `json:"x"`
	Y  int32  `json:"y"`
}

// SnapshotRequest installs a new location snapshot. Engine selects the
// anonymization engine by registry name (the ?engine= query parameter
// takes precedence; the server default applies when both are empty).
// Opts carries engine options by name — notably "workers", the intra-tree
// DP parallelism budget of engines with Info.Parallel.
type SnapshotRequest struct {
	K       int               `json:"k"`
	MapSide int32             `json:"mapSide"`
	Engine  string            `json:"engine,omitempty"`
	Opts    map[string]string `json:"opts,omitempty"`
	Users   []UserJSON        `json:"users"`
}

// RectJSON is a cloak on the wire.
type RectJSON struct {
	MinX int32 `json:"minX"`
	MinY int32 `json:"minY"`
	MaxX int32 `json:"maxX"`
	MaxY int32 `json:"maxY"`
}

func rectJSON(r geo.Rect) RectJSON {
	return RectJSON{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req SnapshotRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if req.K < 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 1, got %d", req.K))
		return
	}
	if req.MapSide < 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("mapSide must be >= 1, got %d", req.MapSide))
		return
	}
	name := r.URL.Query().Get("engine")
	if name == "" {
		name = req.Engine
	}
	if name == "" {
		name = s.DefaultEngine()
	}
	eng, err := engine.Get(name)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	info, _ := engine.InfoOf(name)
	db := location.New(len(req.Users))
	for _, u := range req.Users {
		if err := db.Add(u.ID, geo.Point{X: u.X, Y: u.Y}); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}
	bounds := geo.NewRect(0, 0, req.MapSide, req.MapSide)
	// Incremental engines run through the core anonymizer directly so the
	// configuration matrix survives for /v1/moves maintenance; wrapping
	// the construction as an inline engine keeps spans and metrics
	// identical to the generic path.
	var anon *core.Anonymizer
	run := eng
	if info.Incremental {
		run = engine.New(name, func(ctx context.Context, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
			dp, err := engine.DPOptions(p)
			if err != nil {
				return nil, err
			}
			a, err := core.NewAnonymizerContext(ctx, db, bounds, core.AnonymizerOptions{K: p.K, DP: dp})
			if err != nil {
				return nil, err
			}
			anon = a
			return a.Policy()
		})
	}
	start := time.Now()
	policy, err := s.runEngine(s.obsCtx(r), run, db, bounds, engine.Params{K: req.K, Opts: req.Opts})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrInsufficientUsers) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	elapsed := time.Since(start)

	s.mu.Lock()
	s.k = req.K
	s.bounds = bounds
	s.db = db
	s.anon = anon
	s.policy = policy
	s.snapEngine = name
	s.snapOpts = req.Opts
	s.enginePolicies = map[string]*lbs.Assignment{name: policy}
	if s.provider != nil {
		if s.csp == nil {
			s.csp = lbs.NewCSP(policy, s.provider)
		} else {
			s.csp.SetPolicy(policy)
		}
	}
	s.stats.Users = db.Len()
	s.stats.K = req.K
	s.stats.Engine = name
	s.stats.PolicyCost = policy.Cost()
	s.stats.AvgCloakArea = policy.AvgArea()
	s.stats.AnonymizeMs = float64(elapsed.Microseconds()) / 1000
	if err := s.startMotionLocked(); err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, map[string]any{
		"users":        db.Len(),
		"engine":       name,
		"policyCost":   policy.Cost(),
		"avgCloakArea": policy.AvgArea(),
		"anonymizeMs":  float64(elapsed.Microseconds()) / 1000,
	})
}

// runEngine executes an engine under the server's tracing, metrics, and
// audit middleware. Policy computations are rare (snapshot installs,
// move replays) relative to request serving, so every one is audited
// (rate 1) regardless of the request sampling rate.
func (s *Server) runEngine(ctx context.Context, e engine.Engine, db *location.DB, bounds geo.Rect, p engine.Params) (*lbs.Assignment, error) {
	return engine.Wrap(e,
		engine.WithTracing(),
		engine.WithMetrics(s.reg),
		engine.WithAudit(s.aud, 1),
	).Anonymize(ctx, db, bounds, p)
}

// MovesRequest applies one snapshot interval's worth of user movement.
type MovesRequest struct {
	Moves []UserJSON `json:"moves"`
}

func (s *Server) handleMoves(w http.ResponseWriter, r *http.Request) {
	if p := s.MotionPipeline(); p != nil {
		// Motion enabled: streaming ingest owns maintenance; the
		// synchronous protocol below only serves pipelines-off deployments.
		s.handleMovesStreaming(w, r, p)
		return
	}
	var req MovesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.db == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("no snapshot installed"))
		return
	}
	name := s.snapEngine
	if name == "" {
		name = engine.DefaultName
	}
	info, _ := engine.InfoOf(name)
	if s.anon == nil && info.Incremental {
		// State restored from a checkpoint carries no configuration
		// matrix; rebuild it once, after which maintenance is incremental.
		dp, err := engine.DPOptions(engine.Params{K: s.k, Opts: s.snapOpts})
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		anon, err := core.NewAnonymizerContext(s.obsCtx(r), s.db, s.bounds, core.AnonymizerOptions{K: s.k, DP: dp})
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.anon = anon
	}
	start := time.Now()
	var rows int
	var policy *lbs.Assignment
	if s.anon != nil {
		for _, m := range req.Moves {
			idx := s.db.Index(m.ID)
			if idx < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("unknown user %q", m.ID))
				return
			}
			if !s.bounds.Contains(geo.Point{X: m.X, Y: m.Y}) {
				s.reg.Counter("moves_rejected:bounds").Inc()
				httpError(w, http.StatusBadRequest, fmt.Errorf("move %q: destination (%d,%d) outside map bounds", m.ID, m.X, m.Y))
				return
			}
			if err := s.anon.Move(idx, geo.Point{X: m.X, Y: m.Y}); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("move %q: %w", m.ID, err))
				return
			}
		}
		rows = s.anon.Refresh()
		var err error
		policy, err = s.anon.Policy()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		// The incremental path bypasses runEngine, so audit the maintained
		// policy explicitly — same always-on rate as engine.WithAudit.
		s.aud.ObservePolicy(s.obsCtx(r), name, policy, s.k)
	} else {
		// Non-incremental engine: apply the moves to the snapshot and
		// recompute the whole policy from scratch.
		for _, m := range req.Moves {
			idx := s.db.Index(m.ID)
			if idx < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("unknown user %q", m.ID))
				return
			}
			if !s.bounds.Contains(geo.Point{X: m.X, Y: m.Y}) {
				s.reg.Counter("moves_rejected:bounds").Inc()
				httpError(w, http.StatusBadRequest, fmt.Errorf("move %q: destination (%d,%d) outside map bounds", m.ID, m.X, m.Y))
				return
			}
			s.db.MoveAt(idx, geo.Point{X: m.X, Y: m.Y})
		}
		eng, err := engine.Get(name)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		policy, err = s.runEngine(s.obsCtx(r), eng, s.db, s.bounds, engine.Params{K: s.k, Opts: s.snapOpts})
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		rows = s.db.Len()
	}
	elapsed := time.Since(start)
	s.policy = policy
	s.enginePolicies = map[string]*lbs.Assignment{name: policy}
	if s.csp != nil {
		s.csp.SetPolicy(policy)
	}
	s.stats.MovesApplied += int64(len(req.Moves))
	s.stats.RowsRecomputed += int64(rows)
	s.stats.MaintenanceMs = float64(elapsed.Microseconds()) / 1000
	s.stats.PolicyCost = policy.Cost()
	s.stats.AvgCloakArea = policy.AvgArea()
	writeJSON(w, http.StatusOK, map[string]any{
		"moves":          len(req.Moves),
		"rowsRecomputed": rows,
		"policyCost":     policy.Cost(),
		"maintenanceMs":  float64(elapsed.Microseconds()) / 1000,
	})
}

// POIJSON is one catalogue entry on the wire.
type POIJSON struct {
	ID       string `json:"id"`
	X        int32  `json:"x"`
	Y        int32  `json:"y"`
	Category string `json:"category"`
}

func (s *Server) handlePOIs(w http.ResponseWriter, r *http.Request) {
	var req struct {
		MapSide int32     `json:"mapSide"`
		POIs    []POIJSON `json:"pois"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if req.MapSide < 1 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("mapSide must be >= 1"))
		return
	}
	pois := make([]lbs.POI, len(req.POIs))
	for i, p := range req.POIs {
		pois[i] = lbs.POI{ID: p.ID, Loc: geo.Point{X: p.X, Y: p.Y}, Category: p.Category}
	}
	store, err := lbs.NewPOIStore(pois, geo.NewRect(0, 0, req.MapSide, req.MapSide), 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.provider = lbs.NewPOIProvider(store)
	if s.policy != nil {
		s.csp = lbs.NewCSP(s.policy, s.provider)
	} else {
		s.csp = nil
	}
	s.stats.POIs = len(pois)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"pois": len(pois)})
}

func (s *Server) handleCloak(w http.ResponseWriter, r *http.Request) {
	s.refreshMotion()
	user := r.URL.Query().Get("user")
	if user == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing user parameter"))
		return
	}
	var policy *lbs.Assignment
	if name := r.URL.Query().Get("engine"); name != "" {
		s.mu.Lock()
		if s.db == nil {
			s.mu.Unlock()
			httpError(w, http.StatusConflict, fmt.Errorf("no snapshot installed"))
			return
		}
		var err error
		policy, err = s.enginePolicyLocked(s.obsCtx(r), name)
		s.mu.Unlock()
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		s.mu.RLock()
		policy = s.policy
		s.mu.RUnlock()
	}
	if policy == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("no snapshot installed"))
		return
	}
	cloak, err := policy.CloakOf(user)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"user": user, "cloak": rectJSON(cloak)})
}

// enginePolicyLocked returns (computing and caching on first use) the
// named engine's policy over the current snapshot. Callers must hold the
// write lock.
func (s *Server) enginePolicyLocked(ctx context.Context, name string) (*lbs.Assignment, error) {
	if p, ok := s.enginePolicies[name]; ok {
		return p, nil
	}
	eng, err := engine.Get(name)
	if err != nil {
		return nil, err
	}
	db := s.db
	if s.pipeline != nil && s.policy != nil {
		// With motion active the live db belongs to the maintenance loop;
		// alternative engines must read the immutable published clone.
		db = s.policy.DB()
	}
	p, err := s.runEngine(ctx, eng, db, s.bounds, engine.Params{K: s.k, Opts: s.snapOpts})
	if err != nil {
		return nil, err
	}
	if s.enginePolicies == nil {
		s.enginePolicies = make(map[string]*lbs.Assignment)
	}
	s.enginePolicies[name] = p
	return p, nil
}

// ServiceRequestJSON is a user request on the wire.
type ServiceRequestJSON struct {
	User   string      `json:"user"`
	X      int32       `json:"x"`
	Y      int32       `json:"y"`
	Params []lbs.Param `json:"params"`
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	s.refreshMotion()
	var req ServiceRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	s.mu.RLock()
	csp := s.csp
	s.mu.RUnlock()
	if csp == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("snapshot and POIs must be installed first"))
		return
	}
	sr := lbs.ServiceRequest{UserID: req.User, Loc: geo.Point{X: req.X, Y: req.Y}, Params: req.Params}
	ctx := s.obsCtx(r)
	ar, answer, err := csp.ServeContext(ctx, sr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	policy, engineName, k := s.policy, s.snapEngine, s.k
	s.mu.RUnlock()
	if policy != nil {
		// Sampled achieved-anonymity check on the served cloak: two
		// candidate scans per sampled request, nothing on the rest.
		s.aud.MaybeObserveRequest(ctx, engineName, policy, ar.Cloak, k)
	}
	s.reg.Counter("serve_requests:single").Inc()
	s.mu.Lock()
	s.stats.RequestsServed++
	s.updateServeStatsLocked(csp)
	s.mu.Unlock()
	out := make([]POIJSON, len(answer))
	for i, p := range answer {
		out[i] = POIJSON{ID: p.ID, X: p.Loc.X, Y: p.Loc.Y, Category: p.Category}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rid":        ar.RID,
		"cloak":      rectJSON(ar.Cloak),
		"candidates": out,
	})
}

// updateServeStatsLocked folds the CSP's cumulative cache and coalesce
// counters into the stats snapshot and the coalesce_* metric families.
// Callers hold s.mu. The CSP's counters reset on FlushCache and when a
// snapshot or POI install replaces the CSP; counterDelta keeps the
// monotonic registry counters sane across such epochs.
func (s *Server) updateServeStatsLocked(csp *lbs.CSP) {
	hits, misses := csp.CacheStats()
	flights, coalesced := csp.CoalesceStats()
	s.reg.Counter("coalesce_flights").Add(counterDelta(s.stats.CoalesceFlights, flights))
	s.reg.Counter("coalesce_coalesced").Add(counterDelta(s.stats.CoalesceCoalesced, coalesced))
	s.stats.CacheHits, s.stats.CacheMisses = hits, misses
	s.stats.CoalesceFlights, s.stats.CoalesceCoalesced = flights, coalesced
}

// counterDelta returns the increment from last to cur for a cumulative
// source counter that may have been reset to a new epoch (cur < last), in
// which case everything cur has counted is new.
func counterDelta(last, cur int64) int64 {
	if cur >= last {
		return cur - last
	}
	return cur
}

// maxBatchRequests bounds one POST /v1/request/batch body; larger
// pipelines should split across calls.
const maxBatchRequests = 10000

// BatchRequestJSON is the POST /v1/request/batch body: many user
// requests answered in one round trip against ONE serving snapshot.
type BatchRequestJSON struct {
	Requests []ServiceRequestJSON `json:"requests"`
}

// BatchItemJSON is one request's result within a batch response, in the
// order submitted. A failed item carries Error (plus its RequestID) and
// nothing else; the batch itself still answers 200 — per-item failures
// (unknown user, spoofed location) must not void its neighbours.
// RequestID is the item's derived X-Request-ID ("<batch-rid>-<i>"),
// which also appears in the item's slog lines, breach records, and
// spans, so batch failures are correlatable like single requests.
type BatchItemJSON struct {
	RequestID  string    `json:"requestID,omitempty"`
	RID        uint64    `json:"rid,omitempty"`
	Cloak      *RectJSON `json:"cloak,omitempty"`
	Candidates []POIJSON `json:"candidates,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// handleRequestBatch serves POST /v1/request/batch: the serving snapshot
// (CSP, policy, engine) is acquired once for the whole batch, then the
// items resolve in parallel on a bounded worker set. Concurrent items
// that share a cloak and parameters coalesce inside the CSP into one
// provider lookup, which is where the batch's throughput advantage over
// N sequential /v1/request calls comes from.
func (s *Server) handleRequestBatch(w http.ResponseWriter, r *http.Request) {
	s.refreshMotion()
	var req BatchRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(req.Requests) > maxBatchRequests {
		httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the %d-request limit", len(req.Requests), maxBatchRequests))
		return
	}
	// One snapshot acquisition for the whole batch.
	s.mu.RLock()
	csp, policy, engineName, k := s.csp, s.policy, s.snapEngine, s.k
	s.mu.RUnlock()
	if csp == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("snapshot and POIs must be installed first"))
		return
	}
	ctx := s.obsCtx(r)
	batchRID := audit.RequestID(ctx)
	logger := s.Logger()
	items := make([]BatchItemJSON, len(req.Requests))
	nw := runtime.GOMAXPROCS(0)
	if nw > len(req.Requests) {
		nw = len(req.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for range nw {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Requests) {
					return
				}
				rq := req.Requests[i]
				// Each item gets a derived request ID so its breach
				// records, log lines, and spans correlate individually.
				itemRID := batchRID + "-" + strconv.Itoa(i)
				ictx := audit.WithRequestID(ctx, itemRID)
				ictx, isp := obs.Start(ictx, "serve.item")
				isp.SetAttr("rid", itemRID)
				sr := lbs.ServiceRequest{UserID: rq.User, Loc: geo.Point{X: rq.X, Y: rq.Y}, Params: rq.Params}
				ar, answer, err := csp.ServeContext(ictx, sr)
				if err != nil {
					isp.SetAttr("error", err.Error())
					isp.End()
					items[i] = BatchItemJSON{RequestID: itemRID, Error: err.Error()}
					if logger != nil {
						logger.LogAttrs(ictx, slog.LevelDebug, "batch item failed",
							slog.String("rid", itemRID),
							slog.String("user", rq.User),
							slog.String("error", err.Error()),
						)
					}
					continue
				}
				if policy != nil {
					s.aud.MaybeObserveRequest(ictx, engineName, policy, ar.Cloak, k)
				}
				out := make([]POIJSON, len(answer))
				for j, p := range answer {
					out[j] = POIJSON{ID: p.ID, X: p.Loc.X, Y: p.Loc.Y, Category: p.Category}
				}
				cl := rectJSON(ar.Cloak)
				items[i] = BatchItemJSON{RequestID: itemRID, RID: ar.RID, Cloak: &cl, Candidates: out}
				isp.End()
			}
		}()
	}
	wg.Wait()
	s.reg.Counter("serve_batches").Inc()
	s.reg.Counter("serve_requests:batch").Add(int64(len(req.Requests)))
	s.mu.Lock()
	s.stats.RequestsServed += int64(len(req.Requests))
	s.stats.BatchesServed++
	s.updateServeStatsLocked(csp)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"results": items})
}

// CheckpointTo streams the current state as a checkpoint; it fails when
// no snapshot is installed.
func (s *Server) CheckpointTo(w io.Writer) error {
	s.refreshMotion()
	s.mu.RLock()
	policy, k, bounds := s.policy, s.k, s.bounds
	s.mu.RUnlock()
	if policy == nil {
		return fmt.Errorf("server: no snapshot installed")
	}
	return checkpoint.Save(w, k, bounds, policy)
}

// RestoreFrom installs a previously saved checkpoint. The configuration
// matrix is rebuilt lazily on the first movement update.
func (s *Server) RestoreFrom(r io.Reader) error {
	st, err := checkpoint.Load(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.k = st.K
	s.bounds = st.Bounds
	s.db = st.DB
	s.anon = nil // lazily rebuilt by the next /v1/moves
	s.policy = st.Policy
	// Checkpoints predate engine selection and always carry the default
	// engine's policy, with default options.
	s.snapEngine = engine.DefaultName
	s.snapOpts = nil
	s.enginePolicies = map[string]*lbs.Assignment{engine.DefaultName: st.Policy}
	if s.provider != nil {
		if s.csp == nil {
			s.csp = lbs.NewCSP(st.Policy, s.provider)
		} else {
			s.csp.SetPolicy(st.Policy)
		}
	}
	s.stats.Users = st.DB.Len()
	s.stats.K = st.K
	s.stats.PolicyCost = st.Policy.Cost()
	s.stats.AvgCloakArea = st.Policy.AvgArea()
	err = s.startMotionLocked()
	s.mu.Unlock()
	return err
}

func (s *Server) handleCheckpointSave(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	installed := s.policy != nil
	s.mu.RUnlock()
	if !installed {
		httpError(w, http.StatusConflict, fmt.Errorf("no snapshot installed"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.CheckpointTo(w); err != nil {
		// Headers are already out; log-style best effort.
		fmt.Fprintf(w, "\ncheckpoint error: %v", err)
	}
}

func (s *Server) handleCheckpointRestore(w http.ResponseWriter, r *http.Request) {
	if err := s.RestoreFrom(r.Body); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, checkpoint.ErrUnsafe) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	s.mu.RLock()
	users, k := s.stats.Users, s.stats.K
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"users": users, "k": k})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.refreshMotion()
	s.mu.Lock()
	// Fold in the CSP's live cache/coalesce counters so the endpoint is
	// current even when no request has been served since the last read.
	if s.csp != nil {
		s.updateServeStatsLocked(s.csp)
	}
	st := s.stats
	pl := s.pipeline
	s.mu.Unlock()
	if pl != nil {
		ms := pl.Stats()
		st.MotionEpoch = ms.Epoch
		st.MotionQueueDepth = ms.QueueDepth
		st.MotionFallbacks = ms.Fallbacks
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
