package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"policyanon/internal/ledger"
)

// EnableLedger attaches a tamper-evident audit ledger: the privacy
// observatory starts appending every policy audit, sampled request
// verdict, and breach to it, motion snapshot swaps are recorded, and the
// /v1/audit/root and /v1/audit/proof endpoints come alive. nil detaches.
// The caller owns the ledger's lifecycle (Close it after the HTTP server
// drains, so the final batch seals).
func (s *Server) EnableLedger(l *ledger.Ledger) {
	s.led.Store(l)
	s.aud.SetLedger(l)
}

// Ledger returns the attached audit ledger, or nil.
func (s *Server) Ledger() *ledger.Ledger { return s.led.Load() }

// handleAuditRoot serves the latest sealed checkpoint — the signed head
// of the ledger's Merkle hash chain. Auditors poll it to pin the chain;
// any later fork or rewrite of sealed history is detectable against a
// pinned root.
func (s *Server) handleAuditRoot(w http.ResponseWriter, r *http.Request) {
	l := s.led.Load()
	if l == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("audit ledger disabled (start with -ledger)"))
		return
	}
	cp, ok := l.Latest()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no batch sealed yet"))
		return
	}
	st := l.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"checkpoint": cp,
		"events":     st.Events,
		"pending":    st.Pending,
	})
}

// handleAuditProof serves the Merkle inclusion proof for one audit event
// by ledger sequence number. The proof verifies offline: leaf hash →
// audit path → batch root → signed chain root (ledger.Proof.Verify).
// Status codes distinguish the three ways a sequence can be unprovable:
// 404 unknown, 409 not yet sealed (retry after the flush interval), 410
// sealed but evicted from in-memory retention (replay the anchor file).
func (s *Server) handleAuditProof(w http.ResponseWriter, r *http.Request) {
	l := s.led.Load()
	if l == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("audit ledger disabled (start with -ledger)"))
		return
	}
	seqStr := r.URL.Query().Get("seq")
	if seqStr == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing seq parameter"))
		return
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad seq %q: %w", seqStr, err))
		return
	}
	proof, err := l.Prove(s.obsCtx(r), seq)
	switch {
	case errors.Is(err, ledger.ErrPending):
		httpError(w, http.StatusConflict, err)
		return
	case errors.Is(err, ledger.ErrEvicted):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, proof)
}
