package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"policyanon/internal/ledger"
	"policyanon/internal/motion"
)

// newLedgerServer builds a server with a memory-anchored ledger whose
// flush timer is disabled — tests drive sealing explicitly.
func newLedgerServer(t *testing.T) (*Server, *ledger.Ledger, string) {
	t.Helper()
	srv := New()
	l, err := ledger.New(ledger.NewMemAnchor(), ledger.Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(context.Background()) })
	srv.EnableLedger(l)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, l, ts.URL
}

func TestLedgerEndpointsDisabled(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/v1/audit/root", "/v1/audit/proof?seq=1"} {
		resp, body := get(t, ts.URL+path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without ledger: %d %v, want 404", path, resp.StatusCode, body)
		}
	}
}

func TestLedgerRootAndProofEndpoints(t *testing.T) {
	_, l, base := newLedgerServer(t)

	// Before any seal the root endpoint answers 404.
	resp, body := get(t, base+"/v1/audit/root")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("root before seal: %d %v", resp.StatusCode, body)
	}

	// Installing a snapshot produces a policy-audit ledger event (the
	// engine middleware audits every install at rate 1).
	installSnapshot(t, base, 5)
	if st := l.Stats(); st.Events == 0 {
		t.Fatal("snapshot install appended no ledger events")
	}

	// An appended-but-unsealed event is 409 (retry after flush).
	resp, body = get(t, base+"/v1/audit/proof?seq=1")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("pending proof: %d %v, want 409", resp.StatusCode, body)
	}

	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, base+"/v1/audit/root")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("root after seal: %d %v", resp.StatusCode, body)
	}
	cp := body["checkpoint"].(map[string]any)
	if cp["batchSeq"].(float64) != 1 || cp["chainRoot"].(string) == "" {
		t.Fatalf("root checkpoint %v", cp)
	}

	// The served proof verifies offline from its wire form alone.
	raw, err := http.Get(base + "/v1/audit/proof?seq=1")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("proof after seal: %d", raw.StatusCode)
	}
	var proof ledger.Proof
	if err := json.NewDecoder(raw.Body).Decode(&proof); err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("served proof failed offline verification: %v", err)
	}
	if proof.Event.Kind != ledger.KindPolicyAudit {
		t.Fatalf("event kind = %s, want %s", proof.Event.Kind, ledger.KindPolicyAudit)
	}
	if proof.Checkpoint.ChainRoot != cp["chainRoot"].(string) {
		t.Fatal("proof chain root does not match the served root")
	}

	// A tampered proof must fail verification (acceptance criterion: the
	// proof path rejects mutation just like the offline verifier).
	forged := proof
	forged.Event.Detail = strings.Replace(proof.Event.Detail, "1", "2", 1)
	if err := forged.Verify(); err == nil {
		t.Fatal("tampered proof still verifies")
	}

	// Unknown seq → 404.
	resp, body = get(t, base+"/v1/audit/proof?seq=99999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown seq: %d %v", resp.StatusCode, body)
	}
	// Malformed seq → 400.
	resp, body = get(t, base+"/v1/audit/proof?seq=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad seq: %d %v", resp.StatusCode, body)
	}
	resp, body = get(t, base+"/v1/audit/proof")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing seq: %d %v", resp.StatusCode, body)
	}
}

func TestAuditReportCarriesLedgerRoot(t *testing.T) {
	_, l, base := newLedgerServer(t)
	installSnapshot(t, base, 5)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, base+"/v1/audit")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit report: %d %v", resp.StatusCode, body)
	}
	roots, ok := body["ledgerRoots"].([]any)
	if !ok || len(roots) != 1 {
		t.Fatalf("report ledgerRoots = %v, want one entry", body["ledgerRoots"])
	}
	root := roots[0].(map[string]any)
	last, _ := l.Latest()
	if root["chainRoot"].(string) != last.ChainRoot {
		t.Fatalf("report root %v != ledger head %s", root["chainRoot"], last.ChainRoot)
	}
}

func TestMotionSwapAppendsLedgerEvent(t *testing.T) {
	srv := New()
	l, err := ledger.New(ledger.NewMemAnchor(), ledger.Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(context.Background()) })
	srv.EnableLedger(l)
	srv.EnableMotion(motion.Config{MaxBatch: 1, FlushInterval: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	installSnapshot(t, ts.URL, 5)
	x, y := seedLoc(7)
	resp, body := post(t, ts.URL+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "u07", X: float64(x + 1), Y: float64(y)},
	}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("move: %d %v", resp.StatusCode, body)
	}
	waitEpoch(t, ts.URL, 2)

	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Find a snapshot_swap event among the sealed batch.
	found := false
	for seq := uint64(1); ; seq++ {
		p, err := l.Prove(context.Background(), seq)
		if err != nil {
			break
		}
		if p.Event.Kind == ledger.KindSnapshotSwap {
			found = true
			if !strings.Contains(p.Event.Detail, `"strategy"`) {
				t.Fatalf("swap event detail %q lacks strategy", p.Event.Detail)
			}
			break
		}
	}
	if !found {
		t.Fatal("no snapshot_swap event sealed after a motion swap")
	}
}

// syncWriter serializes writes: the motion pipeline and the request
// handler log from different goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestMotionRejectedLogCarriesRequestID(t *testing.T) {
	var logSink syncWriter
	srv, base := newMotionServer(t, motion.Config{
		MaxBatch:      8,
		FlushInterval: time.Millisecond,
	})
	srv.SetLogger(slog.New(slog.NewJSONHandler(&logSink, &slog.HandlerOptions{Level: slog.LevelDebug})))
	installSnapshot(t, base, 5)

	payload, _ := json.Marshal(StreamMovesRequest{Moves: []MoveUpdateJSON{
		{ID: "ghost", X: 1, Y: 1},
	}})
	req, err := http.NewRequest(http.MethodPost, base+"/v1/moves", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "rid-reject-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reject status = %d, want 400", resp.StatusCode)
	}
	// The client's request ID is echoed on the response...
	if got := resp.Header.Get("X-Request-ID"); got != "rid-reject-test" {
		t.Fatalf("echoed X-Request-ID = %q", got)
	}
	// ...and stamped on the motion_rejected log line.
	logged := logSink.String()
	line := ""
	for _, l := range strings.Split(logged, "\n") {
		if strings.Contains(l, "motion_rejected") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no motion_rejected log line in %q", logged)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["rid"] != "rid-reject-test" {
		t.Fatalf("motion_rejected rid = %v, want rid-reject-test", rec["rid"])
	}
	if rec["user"] != "ghost" || rec["reason"] != motion.ReasonUnknownUser {
		t.Fatalf("motion_rejected fields %v", rec)
	}
}
