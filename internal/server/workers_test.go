package server

import (
	"fmt"
	"net/http"
	"testing"
)

// snapshotUsers builds the fixed 40-user snapshot installSnapshot posts.
func snapshotUsers() []UserJSON {
	users := make([]UserJSON, 0, 40)
	for i := 0; i < 40; i++ {
		users = append(users, UserJSON{
			ID: fmt.Sprintf("u%02d", i),
			X:  int32((i * 13) % 64), Y: int32((i * 29) % 64),
		})
	}
	return users
}

// TestSnapshotWorkersOpt checks the transport-level option map: a
// snapshot anonymized with a DP worker budget must cost exactly what the
// sequential default does, and subsequent movement maintenance must keep
// working (the rebuilt matrix inherits the snapshot's options).
func TestSnapshotWorkersOpt(t *testing.T) {
	ts := newTestServer(t)
	resp, seq := post(t, ts.URL+"/v1/snapshot", SnapshotRequest{K: 5, MapSide: 64, Users: snapshotUsers()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequential snapshot: %d %v", resp.StatusCode, seq)
	}

	ts2 := newTestServer(t)
	resp, par := post(t, ts2.URL+"/v1/snapshot", SnapshotRequest{
		K: 5, MapSide: 64, Users: snapshotUsers(),
		Opts: map[string]string{"workers": "4"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("parallel snapshot: %d %v", resp.StatusCode, par)
	}
	if seq["policyCost"] != par["policyCost"] {
		t.Fatalf("policy cost differs: %v sequential, %v with workers=4", seq["policyCost"], par["policyCost"])
	}

	// Movement maintenance on the parallel-built snapshot.
	resp, body := post(t, ts2.URL+"/v1/moves", MovesRequest{
		Moves: []UserJSON{{ID: "u03", X: 1, Y: 2}, {ID: "u17", X: 60, Y: 61}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moves: %d %v", resp.StatusCode, body)
	}
}

// TestSnapshotWorkersOptMalformed pins the 400 for unparsable budgets.
func TestSnapshotWorkersOptMalformed(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/snapshot", SnapshotRequest{
		K: 5, MapSide: 64, Users: snapshotUsers(),
		Opts: map[string]string{"workers": "many"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("expected 400 for workers=many, got %d", resp.StatusCode)
	}
}
