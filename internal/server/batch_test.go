package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"policyanon/internal/lbs"
)

// batchUser returns the fixture user installed by installSnapshot at
// index i, with the exact stored location (the server rejects spoofs).
func batchUser(i int) ServiceRequestJSON {
	return ServiceRequestJSON{
		User: fmt.Sprintf("u%02d", i),
		X:    int32((i * 13) % 64), Y: int32((i * 29) % 64),
	}
}

// postBatch posts a batch and decodes the typed response items.
func postBatch(t *testing.T, base string, reqs []ServiceRequestJSON) (*http.Response, []BatchItemJSON) {
	t.Helper()
	resp, body := post(t, base+"/v1/request/batch", BatchRequestJSON{Requests: reqs})
	raw, err := json.Marshal(body["results"])
	if err != nil {
		t.Fatal(err)
	}
	var items []BatchItemJSON
	if err := json.Unmarshal(raw, &items); err != nil {
		t.Fatal(err)
	}
	return resp, items
}

// TestBatchParityWithSingles is the batch-endpoint parity oracle: one
// POST /v1/request/batch must return, per user and in submission order,
// exactly the cloak and candidate set N sequential POST /v1/request
// calls return. Run with -race: item resolution is parallel.
func TestBatchParityWithSingles(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	var reqs []ServiceRequestJSON
	for i := 0; i < 40; i++ {
		r := batchUser(i)
		r.Params = []lbs.Param{{Name: "cat", Value: "gas"}}
		reqs = append(reqs, r)
	}

	// Sequential singles first, recording cloak+candidates per user.
	type answer struct {
		cloak      map[string]any
		candidates []POIJSON
	}
	singles := make([]answer, len(reqs))
	for i, rq := range reqs {
		resp, body := post(t, ts.URL+"/v1/request", rq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %d: %d %v", i, resp.StatusCode, body)
		}
		raw, _ := json.Marshal(body["candidates"])
		var cands []POIJSON
		if err := json.Unmarshal(raw, &cands); err != nil {
			t.Fatal(err)
		}
		singles[i] = answer{cloak: body["cloak"].(map[string]any), candidates: cands}
	}

	resp, items := postBatch(t, ts.URL, reqs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	if len(items) != len(reqs) {
		t.Fatalf("batch returned %d items for %d requests", len(items), len(reqs))
	}
	for i, it := range items {
		if it.Error != "" {
			t.Fatalf("item %d (%s): %s", i, reqs[i].User, it.Error)
		}
		if it.Cloak == nil {
			t.Fatalf("item %d: no cloak", i)
		}
		got := map[string]any{
			"minX": float64(it.Cloak.MinX), "minY": float64(it.Cloak.MinY),
			"maxX": float64(it.Cloak.MaxX), "maxY": float64(it.Cloak.MaxY),
		}
		for k, v := range singles[i].cloak {
			if got[k] != v {
				t.Fatalf("item %d (%s): cloak %s = %v, single returned %v", i, reqs[i].User, k, got[k], v)
			}
		}
		if !reflect.DeepEqual(it.Candidates, singles[i].candidates) {
			t.Fatalf("item %d (%s): candidates %+v, single returned %+v", i, reqs[i].User, it.Candidates, singles[i].candidates)
		}
	}
}

// TestBatchPerItemErrors: invalid items fail individually while valid
// neighbours still answer; the batch stays 200.
func TestBatchPerItemErrors(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	reqs := []ServiceRequestJSON{
		batchUser(0),
		{User: "nobody", X: 1, Y: 1}, // unknown user
		{User: "u01", X: 63, Y: 63},  // spoofed location
		batchUser(2),
	}
	resp, items := postBatch(t, ts.URL, reqs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with bad items: %d, want 200 with per-item errors", resp.StatusCode)
	}
	if items[0].Error != "" || items[3].Error != "" {
		t.Fatalf("valid items failed: %q / %q", items[0].Error, items[3].Error)
	}
	if items[1].Error == "" || items[2].Error == "" {
		t.Fatalf("invalid items served: %+v / %+v", items[1], items[2])
	}
	if items[0].Cloak == nil || items[3].Cloak == nil {
		t.Fatal("valid items carry no cloak")
	}
}

// TestBatchValidation: empty batches and batches before setup are
// rejected whole.
func TestBatchValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, _ := post(t, ts.URL+"/v1/request/batch", BatchRequestJSON{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/v1/request/batch", BatchRequestJSON{Requests: []ServiceRequestJSON{{User: "u00"}}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("batch before setup: %d, want 409", resp.StatusCode)
	}
}

// TestBatchStatsAndMetrics: batches feed the serve_*/coalesce_* metric
// families and the stats document.
func TestBatchStatsAndMetrics(t *testing.T) {
	ts := newTestServer(t)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	var reqs []ServiceRequestJSON
	for i := 0; i < 10; i++ {
		reqs = append(reqs, batchUser(i))
	}
	if resp, _ := postBatch(t, ts.URL, reqs); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	if stats["batchesServed"].(float64) != 1 {
		t.Fatalf("batchesServed = %v, want 1", stats["batchesServed"])
	}
	if stats["requestsServed"].(float64) != 10 {
		t.Fatalf("requestsServed = %v, want 10", stats["requestsServed"])
	}
	// Every provider lookup is a flight; hits+flights+coalesced = 10.
	flights := stats["coalesceFlights"].(float64)
	coalesced := stats["coalesceCoalesced"].(float64)
	hits := stats["cacheHits"].(float64)
	if flights < 1 || hits+flights+coalesced != 10 {
		t.Fatalf("hits(%v)+flights(%v)+coalesced(%v) != 10", hits, flights, coalesced)
	}
	_, metricsDoc := get(t, ts.URL+"/v1/metrics")
	counters, _ := metricsDoc["counters"].(map[string]any)
	if counters == nil {
		t.Fatalf("metrics document lacks counters: %v", metricsDoc)
	}
	if counters["serve_batches"].(float64) != 1 {
		t.Fatalf("serve_batches = %v, want 1", counters["serve_batches"])
	}
	if counters["serve_requests:batch"].(float64) != 10 {
		t.Fatalf("serve_requests:batch = %v, want 10", counters["serve_requests:batch"])
	}
	if _, ok := counters["coalesce_flights"]; !ok {
		t.Fatal("coalesce_flights family missing")
	}
}
