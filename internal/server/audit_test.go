package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/audit"
	"policyanon/internal/engine"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// lockedBuffer is an io.Writer safe for the server's concurrent handlers.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// example1Users is the paper's Example 1 snapshot; a k-inside engine
// (casper) breaches policy-aware 2-anonymity on it by construction.
var example1Users = []UserJSON{
	{ID: "Alice", X: 1, Y: 1}, {ID: "Bob", X: 1, Y: 2}, {ID: "Carol", X: 1, Y: 5},
	{ID: "Sam", X: 5, Y: 1}, {ID: "Tom", X: 6, Y: 2},
}

// TestAuditEndToEnd drives the acceptance path of the privacy
// observatory: install the Example 1 snapshot under the casper engine and
// verify (1) /v1/audit reports the min achieved-k that attacker.Audit
// computes from first principles, (2) the policy-aware breach shows up as
// a Prometheus counter increment, and (3) a structured breach log line
// carries the originating request's ID.
func TestAuditEndToEnd(t *testing.T) {
	log := &lockedBuffer{}
	srv := New()
	srv.SetLogger(audit.NewJSONLogger(log, slog.LevelWarn))
	srv.SetAuditRate(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Install the snapshot with a caller-chosen request ID.
	body, _ := json.Marshal(SnapshotRequest{K: 2, MapSide: 8, Engine: "casper", Users: example1Users})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/snapshot", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "e2e-rid-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "e2e-rid-7" {
		t.Fatalf("request ID not echoed: %q", got)
	}

	// Ground truth: the same engine run on the same snapshot is
	// deterministic, so attacker.Audit over it is what /v1/audit must say.
	db := location.New(0)
	for _, u := range example1Users {
		if err := db.Add(u.ID, geo.Point{X: u.X, Y: u.Y}); err != nil {
			t.Fatal(err)
		}
	}
	casper, err := engine.Get("casper")
	if err != nil {
		t.Fatal(err)
	}
	pol, err := casper.Anonymize(context.Background(), db, geo.NewRect(0, 0, 8, 8), engine.Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	awBreaches, minAware := attacker.Audit(pol, 2, attacker.PolicyAware)
	_, minUnaware := attacker.Audit(pol, 2, attacker.PolicyUnaware)
	if len(awBreaches) == 0 {
		t.Fatal("fixture lost its Example 1 shape: casper produced no policy-aware breach")
	}

	var rep audit.Report
	aresp, err := http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(aresp.Body).Decode(&rep)
	aresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PolicyAudits != 1 {
		t.Fatalf("policy audits = %d, want 1", rep.PolicyAudits)
	}
	if rep.Aware.Min != minAware || rep.Unaware.Min != minUnaware {
		t.Fatalf("/v1/audit min achieved-k (%d, %d) != attacker.Audit ground truth (%d, %d)",
			rep.Aware.Min, rep.Unaware.Min, minAware, minUnaware)
	}
	if rep.Aware.Breaches < 1 {
		t.Fatalf("report breach total = %d, want >= 1", rep.Aware.Breaches)
	}
	if len(rep.Engines) != 1 || rep.Engines[0] != "casper" {
		t.Fatalf("report engines %v", rep.Engines)
	}

	// The breach is a Prometheus counter increment.
	mresp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`policyanon_anon_breach_total{name="casper/policy-aware"} ` + itoa(len(awBreaches)),
		`policyanon_audit_sampled_total{name="casper/policy"} 1`,
		`policyanon_anon_achieved_k_bucket{name="casper/policy-aware",le="1"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}

	// The breach is a structured log line carrying the request ID.
	var breach map[string]any
	for _, line := range strings.Split(strings.TrimSpace(log.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "anonymity breach" && rec["awareness"] == "policy-aware" {
			breach = rec
			break
		}
	}
	if breach == nil {
		t.Fatalf("no policy-aware breach log line (log: %s)", log.String())
	}
	if breach["rid"] != "e2e-rid-7" {
		t.Errorf("breach log rid %q, want e2e-rid-7", breach["rid"])
	}
	if breach["engine"] != "casper" || breach["expected"] != true {
		t.Errorf("breach log %v: want engine=casper expected=true (casper registers PolicyAware=false)", breach)
	}
}

// TestAuditSamplesRequestPath verifies the served-request sampling half
// of the observatory: with rate 1 every /v1/request lands in the report.
func TestAuditSamplesRequestPath(t *testing.T) {
	srv := New()
	srv.SetAuditRate(1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts.URL+"/v1/snapshot", SnapshotRequest{K: 2, MapSide: 8, Users: example1Users})
	post(t, ts.URL+"/v1/pois", map[string]any{
		"mapSide": 8,
		"pois":    []POIJSON{{ID: "gas1", X: 2, Y: 2, Category: "gas"}},
	})
	resp, body := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "Carol", X: 1, Y: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no request ID minted for /v1/request")
	}

	_, rep := get(t, ts.URL+"/v1/audit")
	if rep["requestAudits"].(float64) != 1 {
		t.Fatalf("request audits = %v, want 1", rep["requestAudits"])
	}
	if rep["sampleRate"].(float64) != 1 {
		t.Fatalf("sample rate = %v, want 1", rep["sampleRate"])
	}

	// Dropping the rate to 0 stops sampling but keeps serving.
	srv.SetAuditRate(0)
	post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "Alice", X: 1, Y: 1})
	_, rep = get(t, ts.URL+"/v1/audit")
	if rep["requestAudits"].(float64) != 1 {
		t.Fatalf("rate-0 audited a request: %v", rep["requestAudits"])
	}
	if rep["skipped"].(float64) != 1 {
		t.Fatalf("skipped = %v, want 1", rep["skipped"])
	}
}

// itoa avoids importing strconv for one call site.
func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
