package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchRequest drives POST /v1/request through the handler directly
// (no network round trip), isolating the server-side cost of the
// always-on tracing layer. The Off/On pair below is the measurement
// behind the BENCH_trace.json overhead gate: their ns/op delta is the
// per-request price of capture + root span + tail decision.
func benchRequest(b *testing.B, tracing bool) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	installBenchSnapshot(b, ts.URL)
	srv.SetRequestTracing(tracing)
	h := srv.Handler()
	x, y := seedLoc(7)
	body, _ := json.Marshal(ServiceRequestJSON{User: "u7", X: x, Y: y})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/request", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func installBenchSnapshot(b *testing.B, base string) {
	users := make([]UserJSON, 40)
	for i := range users {
		x, y := seedLoc(i)
		users[i] = UserJSON{ID: "u" + itoa(i), X: x, Y: y}
	}
	buf, _ := json.Marshal(SnapshotRequest{K: 5, MapSide: 64, Users: users})
	resp, err := http.Post(base+"/v1/snapshot", "application/json", bytes.NewReader(buf))
	if err != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("snapshot: %v %v", err, resp)
	}
	resp.Body.Close()
	buf, _ = json.Marshal(map[string]any{"mapSide": 64, "pois": []POIJSON{{ID: "g", X: 10, Y: 10, Category: "gas"}}})
	resp, err = http.Post(base+"/v1/pois", "application/json", bytes.NewReader(buf))
	if err != nil || resp.StatusCode != http.StatusOK {
		b.Fatalf("pois: %v %v", err, resp)
	}
	resp.Body.Close()
}

func BenchmarkRequestTracingOff(b *testing.B) { benchRequest(b, false) }
func BenchmarkRequestTracingOn(b *testing.B)  { benchRequest(b, true) }
