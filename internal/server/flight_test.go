package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"policyanon/internal/lbs"
	"policyanon/internal/motion"
	"policyanon/internal/obs/flight"
)

// dump fetches GET /v1/debug/flightrecorder and decodes it.
func dump(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, body := get(t, base+"/v1/debug/flightrecorder")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder: %d %v", resp.StatusCode, body)
	}
	return body
}

// summaries pulls the trace summary list out of a flightrecorder dump.
func summaries(t *testing.T, body map[string]any) []map[string]any {
	t.Helper()
	raw, ok := body["traces"].([]any)
	if !ok {
		t.Fatalf("dump has no traces list: %v", body)
	}
	out := make([]map[string]any, len(raw))
	for i, r := range raw {
		out[i] = r.(map[string]any)
	}
	return out
}

func reasonsOf(s map[string]any) []string {
	var out []string
	if rs, ok := s["reasons"].([]any); ok {
		for _, r := range rs {
			out = append(out, r.(string))
		}
	}
	return out
}

func hasReason(s map[string]any, want string) bool {
	for _, r := range reasonsOf(s) {
		if r == want {
			return true
		}
	}
	return false
}

// TestFlightRecorderForcedSlow is half of the recorder's acceptance
// test: with the slow threshold pinned at 1ns every request is "slow"
// and must surface in GET /v1/debug/flightrecorder; with the threshold
// pinned absurdly high, a warm-cache repeat of the same request must
// NOT be retained — tail sampling, not log-everything.
func TestFlightRecorderForcedSlow(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	x7, y7 := seedLoc(7)
	srv.FlightRecorder().SetThreshold(time.Nanosecond)
	resp, body := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u07", X: x7, Y: y7, Params: []lbs.Param{{Name: "cat", Value: "gas"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %v", resp.StatusCode, body)
	}
	rid := resp.Header.Get("X-Request-ID")
	tid := resp.Header.Get("X-Trace-ID")
	if rid == "" || tid == "" {
		t.Fatalf("request not traced: rid=%q tid=%q", rid, tid)
	}

	d := dump(t, ts.URL)
	var slow map[string]any
	for _, s := range summaries(t, d) {
		if s["rid"] == rid {
			slow = s
		}
	}
	if slow == nil {
		t.Fatalf("forced-slow request %s not in flight recorder: %v", rid, d)
	}
	if !hasReason(slow, flight.ReasonSlow) {
		t.Fatalf("trace reasons %v, want %q", reasonsOf(slow), flight.ReasonSlow)
	}
	if slow["traceID"] != tid {
		t.Fatalf("recorder traceID %v, header says %s", slow["traceID"], tid)
	}
	if slow["spans"].(float64) < 1 {
		t.Fatalf("retained trace has no spans: %v", slow)
	}
	stats := d["stats"].(map[string]any)
	if stats["thresholdPinned"] != true || stats["retained"].(float64) < 1 {
		t.Fatalf("recorder stats: %v", stats)
	}

	// Same request again with an unreachable threshold: warm cache, no
	// flight, nothing slow — the trace must be discarded.
	srv.FlightRecorder().SetThreshold(time.Hour)
	before := int64(stats["retained"].(float64))
	resp2, _ := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: "u07", X: x7, Y: y7, Params: []lbs.Param{{Name: "cat", Value: "gas"}}})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d", resp2.StatusCode)
	}
	d = dump(t, ts.URL)
	after := int64(d["stats"].(map[string]any)["retained"].(float64))
	if after != before {
		t.Fatalf("uninteresting request retained: %d -> %d", before, after)
	}
	// The latency histogram carries the retained trace as an exemplar.
	snap := srv.Metrics().Snapshot()
	h, ok := snap.Histograms["latency:POST /v1/request"]
	if !ok {
		t.Fatal("no request latency histogram")
	}
	found := false
	for _, ex := range h.Exemplars {
		if ex == tid {
			found = true
		}
	}
	if !found {
		t.Fatalf("latency exemplars %v missing retained trace %s", h.Exemplars, tid)
	}
}

// TestFlightRecorderBreach is the other half: a served request whose
// cloak breaches k under the policy-aware attacker (casper on the
// paper's Example 1 snapshot, audit rate 1) must be retained with
// reason "breach" and emit a breach event pinned to its trace ID.
func TestFlightRecorderBreach(t *testing.T) {
	srv := New()
	srv.SetAuditRate(1)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := post(t, ts.URL+"/v1/snapshot", SnapshotRequest{K: 2, MapSide: 8, Engine: "casper", Users: example1Users})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, body)
	}
	post(t, ts.URL+"/v1/pois", map[string]any{
		"mapSide": 8,
		"pois":    []POIJSON{{ID: "gas1", X: 2, Y: 2, Category: "gas"}},
	})
	for _, u := range example1Users {
		resp, body := post(t, ts.URL+"/v1/request", ServiceRequestJSON{User: u.ID, X: u.X, Y: u.Y})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %s: %d %v", u.ID, resp.StatusCode, body)
		}
	}

	d := dump(t, ts.URL)
	var breached map[string]any
	for _, s := range summaries(t, d) {
		if hasReason(s, flight.ReasonBreach) {
			breached = s
		}
	}
	if breached == nil {
		t.Fatalf("no breach-retained trace in flight recorder: %v", d)
	}
	tid := breached["traceID"].(string)

	// The breach event rides the event ring, pinned to the same trace.
	var ev map[string]any
	for _, e := range d["events"].([]any) {
		em := e.(map[string]any)
		if em["kind"] == "breach" && em["traceID"] == tid {
			ev = em
		}
	}
	if ev == nil {
		t.Fatalf("no breach event pinned to trace %s: %v", tid, d["events"])
	}
	if !strings.Contains(ev["detail"].(string), "casper") {
		t.Fatalf("breach event detail %q does not name the engine", ev["detail"])
	}

	// The full span tree is fetchable by trace ID.
	resp2, full := get(t, ts.URL+"/v1/debug/trace?tid="+tid)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace: %d %v", resp2.StatusCode, full)
	}
	if len(full["spans"].([]any)) < 1 {
		t.Fatalf("breach trace has no spans: %v", full)
	}
}

// TestDebugTraceEndpoint drives GET /v1/debug/trace's contract: forced
// retention via X-Debug-Trace, lookup by rid, Chrome trace_event
// export, and clean 400/404 error shapes.
func TestDebugTraceEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	buf, _ := json.Marshal(func() ServiceRequestJSON { x, y := seedLoc(3); return ServiceRequestJSON{User: "u03", X: x, Y: y} }())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/request", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(flight.ForceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced request: %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")

	resp2, full := get(t, ts.URL+"/v1/debug/trace?rid="+rid)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace by rid: %d %v", resp2.StatusCode, full)
	}
	if full["route"] != "POST /v1/request" {
		t.Fatalf("trace route %v", full["route"])
	}
	foundForced := false
	for _, r := range full["reasons"].([]any) {
		if r == flight.ReasonForced {
			foundForced = true
		}
	}
	if !foundForced {
		t.Fatalf("forced trace reasons %v", full["reasons"])
	}
	// The span tree includes the request root with the rid attr.
	if len(full["spans"].([]any)) < 1 {
		t.Fatalf("no spans: %v", full)
	}

	// Chrome export of the same trace.
	cresp, err := http.Get(ts.URL + "/v1/debug/trace?rid=" + rid + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ := io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || !strings.Contains(string(chrome), "traceEvents") {
		t.Fatalf("chrome export: %d %s", cresp.StatusCode, chrome)
	}
	// And of the whole recorder.
	cresp, err = http.Get(ts.URL + "/v1/debug/flightrecorder?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, _ = io.ReadAll(cresp.Body)
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || !strings.Contains(string(chrome), "http.request") {
		t.Fatalf("recorder chrome export: %d %s", cresp.StatusCode, chrome)
	}

	// Error shapes: no selector -> 400, unknown -> 404, bad format -> 400.
	if resp, _ := get(t, ts.URL+"/v1/debug/trace"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bare debug/trace: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/debug/trace?rid=nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown rid: %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/debug/flightrecorder?format=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: %d", resp.StatusCode)
	}
}

// TestBatchItemRequestIDs: every batch item answers with its derived
// per-item request ID "<batch-rid>-<index>" — errored items included —
// and an item rid resolves to its batch's trace in the debug endpoint.
func TestBatchItemRequestIDs(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	installSnapshot(t, ts.URL, 5)
	installPOIs(t, ts.URL)

	x1, y1 := seedLoc(1)
	x5, y5 := seedLoc(5)
	batch := BatchRequestJSON{Requests: []ServiceRequestJSON{
		{User: "u01", X: x1, Y: y1}, {User: "nobody"}, {User: "u05", X: x5, Y: y5},
	}}
	buf, _ := json.Marshal(batch)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/request/batch", bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(flight.ForceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	var reply struct {
		Results []BatchItemJSON `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Results) != 3 {
		t.Fatalf("got %d results", len(reply.Results))
	}
	for i, item := range reply.Results {
		want := fmt.Sprintf("%s-%d", rid, i)
		if item.RequestID != want {
			t.Fatalf("item %d requestID %q, want %q", i, item.RequestID, want)
		}
	}
	if reply.Results[1].Error == "" {
		t.Fatal("unknown user served")
	}

	// An item rid addresses its batch's retained trace.
	resp2, full := get(t, ts.URL+"/v1/debug/trace?rid="+rid+"-1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace by item rid: %d %v", resp2.StatusCode, full)
	}
	if full["rid"] != rid {
		t.Fatalf("item rid resolved to trace %v, want batch %s", full["rid"], rid)
	}
	// The per-item serve spans are in the tree, tagged with item rids.
	itemSpans := 0
	for _, sp := range full["spans"].([]any) {
		if sp.(map[string]any)["name"] == "serve.item" {
			itemSpans++
		}
	}
	if itemSpans != 3 {
		t.Fatalf("batch trace has %d serve.item spans, want 3", itemSpans)
	}
}

// TestStatsLiveCounters: /v1/stats alone now answers "what is the
// serving stack doing right now" — live CSP coalesce/cache counters
// without waiting for the next batch, and motion queue gauges.
func TestStatsLiveCounters(t *testing.T) {
	srv, base := newMotionServer(t, motion.Config{
		MaxBatch:      8,
		FlushInterval: time.Millisecond,
		MaxMoveMeters: 64,
	})
	installSnapshot(t, base, 5)
	installPOIs(t, base)

	x2, y2 := seedLoc(2)
	// One served request: a cold-cache singleflight the stats must show
	// immediately (live CSP fold, not the post-batch refresh).
	resp, body := post(t, base+"/v1/request", ServiceRequestJSON{User: "u02", X: x2, Y: y2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request: %d %v", resp.StatusCode, body)
	}
	_, st := get(t, base+"/v1/stats")
	if st["cacheMisses"].(float64) < 1 || st["coalesceFlights"].(float64) < 1 {
		t.Fatalf("stats missing live CSP counters: misses=%v flights=%v", st["cacheMisses"], st["coalesceFlights"])
	}
	if _, ok := st["motionQueueDepth"]; !ok {
		t.Fatalf("stats missing motion gauges: %v", st)
	}
	if st["motionEpoch"].(float64) < 1 {
		t.Fatalf("motion epoch %v, want >= 1", st["motionEpoch"])
	}

	// Queue a move and wait for it to apply; the epoch gauge advances.
	x, y := seedLoc(2)
	resp, body = post(t, base+"/v1/moves", StreamMovesRequest{Moves: []MoveUpdateJSON{{ID: "u02", X: float64(x + 1), Y: float64(y)}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("moves: %d %v", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, st = get(t, base+"/v1/stats")
		if st["movesApplied"].(float64) >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st["movesApplied"].(float64) < 1 {
		t.Fatalf("move never applied: %v", st)
	}
	_ = srv
}
