package server

import (
	"fmt"
	"net/http"
	"testing"

	"policyanon/internal/engine"
	_ "policyanon/internal/parallel" // register the "parallel" engine
)

func TestEnginesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := get(t, ts.URL+"/v1/engines")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("engines: %d %v", resp.StatusCode, body)
	}
	if body["default"] != engine.DefaultName {
		t.Errorf("default = %v, want %q", body["default"], engine.DefaultName)
	}
	listed := make(map[string]map[string]any)
	for _, e := range body["engines"].([]any) {
		info := e.(map[string]any)
		listed[info["name"].(string)] = info
	}
	for _, want := range []string{"bulkdp-binary", "casper", "hilbert", "parallel"} {
		if _, ok := listed[want]; !ok {
			t.Errorf("engine %q missing from listing %v", want, listed)
		}
	}
	if listed["casper"]["policyAware"] != false || listed["bulkdp-binary"]["policyAware"] != true {
		t.Errorf("capability flags wrong in %v", listed)
	}
}

// TestServeTwoEnginesPerRequest locks the acceptance criterion: one server
// process serves cloaks from two different engines in the same session —
// the snapshot installed under one engine, a second engine computed lazily
// for ?engine= lookups — and the two disagree on at least one user.
func TestServeTwoEnginesPerRequest(t *testing.T) {
	ts := newTestServer(t)
	// Install the snapshot under casper (per-request body field).
	users := []UserJSON{}
	for i := 0; i < 40; i++ {
		users = append(users, UserJSON{
			ID: fmt.Sprintf("u%02d", i),
			X:  int32((i * 13) % 64), Y: int32((i * 29) % 64),
		})
	}
	resp, body := post(t, ts.URL+"/v1/snapshot?engine=casper", SnapshotRequest{K: 5, MapSide: 64, Users: users})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, body)
	}
	if body["engine"] != "casper" {
		t.Fatalf("snapshot engine = %v, want casper", body["engine"])
	}

	cloakOf := func(t *testing.T, url string) map[string]float64 {
		t.Helper()
		resp, body := get(t, url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cloak %s: %d %v", url, resp.StatusCode, body)
		}
		out := make(map[string]float64)
		for k, v := range body["cloak"].(map[string]any) {
			out[k] = v.(float64)
		}
		return out
	}
	// The default lookup serves the installed (casper) policy; the
	// ?engine= lookup computes and serves bulkdp-binary from the same
	// snapshot in the same process.
	differ := false
	for i := 0; i < 40; i++ {
		user := fmt.Sprintf("u%02d", i)
		viaCasper := cloakOf(t, ts.URL+"/v1/cloak?user="+user)
		viaBulk := cloakOf(t, ts.URL+"/v1/cloak?user="+user+"&engine=bulkdp-binary")
		if len(viaCasper) == 0 || len(viaBulk) == 0 {
			t.Fatal("empty cloak")
		}
		for k := range viaCasper {
			if viaCasper[k] != viaBulk[k] {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("casper and bulkdp-binary produced identical cloaks for all 40 users; per-request engine selection is not observable")
	}
	// Asking for the installed engine explicitly serves the cached policy.
	_ = cloakOf(t, ts.URL+"/v1/cloak?user=u00&engine=casper")
	// Unknown engine on lookup is a 400, not a crash.
	resp, _ = get(t, ts.URL+"/v1/cloak?user=u00&engine=no-such")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown engine on cloak: %d", resp.StatusCode)
	}
	// Unknown engine on snapshot is a 400.
	resp, body = post(t, ts.URL+"/v1/snapshot?engine=no-such", SnapshotRequest{K: 5, MapSide: 64, Users: users})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown engine on snapshot: %d %v", resp.StatusCode, body)
	}
	// Stats reports the engine that produced the installed policy.
	resp, body = get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK || body["engine"] != "casper" {
		t.Errorf("stats engine = %v (%d)", body["engine"], resp.StatusCode)
	}
}

// TestMovesUnderNonIncrementalEngine verifies that movement against a
// non-incremental engine recomputes the policy from scratch and drops any
// per-engine cached policies.
func TestMovesUnderNonIncrementalEngine(t *testing.T) {
	ts := newTestServer(t)
	users := []UserJSON{}
	for i := 0; i < 40; i++ {
		users = append(users, UserJSON{
			ID: fmt.Sprintf("u%02d", i),
			X:  int32((i * 13) % 64), Y: int32((i * 29) % 64),
		})
	}
	resp, body := post(t, ts.URL+"/v1/snapshot?engine=hilbert", SnapshotRequest{K: 5, MapSide: 64, Users: users})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %v", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/moves", map[string]any{
		"moves": []map[string]any{{"id": "u03", "x": 60, "y": 60}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moves: %d %v", resp.StatusCode, body)
	}
	// The recomputed policy must mask the new location.
	resp, body = get(t, ts.URL+"/v1/cloak?user=u03")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cloak after move: %d %v", resp.StatusCode, body)
	}
	cloak := body["cloak"].(map[string]any)
	if cloak["maxX"].(float64) < 60 || cloak["maxY"].(float64) < 60 {
		t.Fatalf("cloak %v does not mask the moved location (60,60)", cloak)
	}
}
