// Package sim is a discrete-event simulation of the whole
// privacy-conscious LBS ecosystem of Section II-B: users move between
// periodic location-database snapshots (Section II-A's update model),
// the CSP maintains the optimal policy-aware policy incrementally,
// requests flow through the caching CSP to the untrusted provider, and
// after every snapshot the attacker replays the Section III and
// Section VII attacks against the provider's log.
//
// It is the integration testbed a deployment would use to size k, the
// snapshot interval, and the server pool before going live.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"policyanon/internal/attacker"
	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/roadnet"
	"policyanon/internal/verify"
	"policyanon/internal/workload"
)

// Config parameterizes a simulation run.
type Config struct {
	// Users is the population size (required).
	Users int
	// Intersections for the synthetic map / road network; default Users/8.
	Intersections int
	// MapSide in meters (power of two); default 1<<14.
	MapSide int32
	// K is the anonymity parameter (required).
	K int
	// Snapshots is the number of location-database refreshes to simulate
	// (default 10). The snapshot interval is SnapshotSeconds.
	Snapshots int
	// SnapshotSeconds is the refresh period; default 10 s (the paper's
	// movement-bound interval).
	SnapshotSeconds float64
	// RequestProb is the probability that a user issues one request per
	// snapshot; default 0.1.
	RequestProb float64
	// POIs is the provider catalogue size; default 2000.
	POIs int
	// RoadNetwork selects Brinkhoff-style network movement instead of
	// the random-jitter model of Section VI-C.
	RoadNetwork bool
	// Continuous replaces the per-snapshot independent jitter with a
	// workload.MoveStream: users follow continuous trajectories (each
	// move bounded relative to the previous emitted position), the same
	// emission model the live motion pipeline ingests. Ignored under
	// RoadNetwork, which is already continuous.
	Continuous bool
	// MaxMoveMeters bounds jitter movement per snapshot (default 200, the
	// paper's value). Ignored under RoadNetwork.
	MaxMoveMeters float64
	// Seed makes the run deterministic.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Users < 1 {
		return c, fmt.Errorf("sim: Users must be >= 1")
	}
	if c.K < 1 {
		return c, fmt.Errorf("sim: K must be >= 1")
	}
	if c.Users < c.K {
		return c, fmt.Errorf("sim: Users (%d) below K (%d)", c.Users, c.K)
	}
	if c.Intersections == 0 {
		c.Intersections = c.Users/8 + 1
	}
	if c.MapSide == 0 {
		c.MapSide = 1 << 14
	}
	if c.Snapshots == 0 {
		c.Snapshots = 10
	}
	if c.SnapshotSeconds == 0 {
		c.SnapshotSeconds = 10
	}
	if c.RequestProb == 0 {
		c.RequestProb = 0.1
	}
	if c.POIs == 0 {
		c.POIs = 2000
	}
	if c.MaxMoveMeters == 0 {
		c.MaxMoveMeters = 200
	}
	return c, nil
}

// SnapshotReport collects the metrics of one snapshot interval.
type SnapshotReport struct {
	Snapshot        int
	MaintenanceTime time.Duration
	RowsRecomputed  int
	// RowsExtracted counts tree nodes the policy-exhibition pass
	// re-assigned (|D| for full publishes); CloaksChanged counts per-user
	// cloak rewrites; Delta marks a copy-on-write delta publish (the
	// continuous-trajectory mode's steady state).
	RowsExtracted int
	CloaksChanged int
	Delta         bool
	PolicyCost      int64
	AvgCloakArea    float64
	Requests        int
	ProviderTrips   int
	CacheHits       int64
	MinAnonymity    int
	FrequencyLeaks  int
	AvgAnswerSize   float64
}

// Report is the outcome of a full run.
type Report struct {
	Config    Config
	Snapshots []SnapshotReport
	// BreachedSnapshots counts snapshots whose policy-aware audit found a
	// candidate set below k; always 0 unless the implementation is wrong.
	BreachedSnapshots int
}

// Run executes the simulation.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bounds := geo.NewRect(0, 0, cfg.MapSide, cfg.MapSide)

	// Map + initial population.
	inter := make([]geo.Point, cfg.Intersections)
	for i := range inter {
		inter[i] = geo.Point{X: rng.Int31n(cfg.MapSide), Y: rng.Int31n(cfg.MapSide)}
	}
	var agents *roadnet.Agents
	db := location.New(cfg.Users)
	if cfg.RoadNetwork {
		net, err := roadnet.BuildNetwork(inter, bounds, 3)
		if err != nil {
			return nil, err
		}
		agents, err = roadnet.NewAgents(net, cfg.Users, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		for i, p := range agents.Positions() {
			if err := db.Add(fmt.Sprintf("u%06d", i), p); err != nil {
				return nil, err
			}
		}
	} else {
		for i := 0; i < cfg.Users; i++ {
			c := inter[rng.Intn(len(inter))]
			p := geo.Point{
				X: jitter(rng, c.X, 500, cfg.MapSide),
				Y: jitter(rng, c.Y, 500, cfg.MapSide),
			}
			if err := db.Add(fmt.Sprintf("u%06d", i), p); err != nil {
				return nil, err
			}
		}
	}

	// Provider catalogue.
	cats := []string{"gas", "rest", "hosp", "atm"}
	pois := make([]lbs.POI, cfg.POIs)
	for i := range pois {
		pois[i] = lbs.POI{
			ID:       fmt.Sprintf("poi%06d", i),
			Loc:      geo.Point{X: rng.Int31n(cfg.MapSide), Y: rng.Int31n(cfg.MapSide)},
			Category: cats[rng.Intn(len(cats))],
		}
	}
	store, err := lbs.NewPOIStore(pois, bounds, 0)
	if err != nil {
		return nil, err
	}

	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: cfg.K})
	if err != nil {
		return nil, err
	}
	var stream *workload.MoveStream
	if cfg.Continuous && !cfg.RoadNetwork {
		stream = workload.NewMoveStream(cfg.Seed+2, db, cfg.MaxMoveMeters, cfg.MapSide)
	}
	report := &Report{Config: cfg}
	// lastPub anchors the continuous mode's delta-publication chain: while
	// it is intact, each snapshot extracts only the changed cloaks and
	// derives the next published policy copy-on-write, so a small batch of
	// trajectory moves costs O(dirty subtrees) instead of O(|D|).
	var lastPub *lbs.Assignment
	for s := 0; s < cfg.Snapshots; s++ {
		// 1. Movement + incremental maintenance.
		start := time.Now()
		rows := 0
		var mvs []lbs.Move
		if s > 0 {
			if agents != nil {
				agents.Step(cfg.SnapshotSeconds)
				for i, p := range agents.Positions() {
					if db.At(i).Loc != p {
						if err := anon.Move(i, p); err != nil {
							return nil, err
						}
					}
				}
			} else if stream != nil {
				// Continuous trajectories: the same 5% of users per
				// interval, but each from its previous emitted position.
				n := cfg.Users / 20
				if n < 1 {
					n = 1
				}
				batch := stream.NextBatch(n)
				if lastPub != nil {
					// Coalesce per user, keeping the first From: that is
					// the location the published parent still holds.
					coalesced := make(map[int]lbs.Move, len(batch))
					for _, mv := range batch {
						c, ok := coalesced[mv.Index]
						if !ok {
							c = lbs.Move{Index: mv.Index, From: db.At(mv.Index).Loc}
						}
						c.To = mv.To
						coalesced[mv.Index] = c
					}
					mvs = make([]lbs.Move, 0, len(coalesced))
					for _, mv := range coalesced {
						mvs = append(mvs, mv)
					}
				}
				for _, mv := range batch {
					if err := anon.Move(mv.Index, mv.To); err != nil {
						return nil, err
					}
				}
			} else {
				moves := workload.PlanMoves(rng, db, 0.05, cfg.MaxMoveMeters, cfg.MapSide)
				for _, mv := range moves {
					if err := anon.Move(mv.Index, mv.To); err != nil {
						return nil, err
					}
				}
			}
			rows = anon.Refresh()
		}
		var (
			policy        *lbs.Assignment
			rowsExtracted int
			cloaksChanged int
			isDelta       bool
		)
		if lastPub != nil && s > 0 {
			if changes, visited, derr := anon.Matrix().ExtractDelta(); derr == nil {
				if pub, aerr := lastPub.ApplyDelta(mvs, changes); aerr == nil {
					policy, rowsExtracted, cloaksChanged, isDelta = pub, visited, len(changes), true
				} else {
					lastPub = nil // chain mismatch: republish from scratch
				}
			}
		}
		if policy == nil {
			full, err := anon.Policy()
			if err != nil {
				return nil, err
			}
			policy = full
			if stream != nil {
				// Rebind to an immutable clone so the next snapshot can
				// derive from this one while the live DB keeps mutating.
				pub, err := lbs.NewAssignment(db.Clone(), full.Cloaks())
				if err != nil {
					return nil, err
				}
				policy = pub
			}
			rowsExtracted, cloaksChanged = policy.Len(), policy.Len()
		}
		if stream != nil {
			lastPub = policy
		}
		maintenance := time.Since(start)
		// Verify rather than trust before installing the policy. Delta
		// publishes are verified delta-scoped with a periodic full anchor
		// (every 16th snapshot); everything else is verified in full.
		var rep *verify.Report
		if isDelta && s%16 != 0 {
			rep = verify.Delta(policy, cfg.K)
		} else {
			rep = verify.Policy(policy, cfg.K)
		}
		if !rep.OK() {
			return nil, fmt.Errorf("sim: snapshot %d policy failed verification: %s", s, rep.Problems[0])
		}

		// 2. Fresh provider + caching CSP for this snapshot epoch.
		provider := lbs.NewPOIProvider(store)
		csp := lbs.NewCSP(policy, provider)

		// 3. Requests.
		requests, answerTotal := 0, 0
		for i := 0; i < db.Len(); i++ {
			if rng.Float64() >= cfg.RequestProb {
				continue
			}
			rec := db.At(i)
			_, answer, err := csp.Serve(lbs.ServiceRequest{
				UserID: rec.UserID, Loc: rec.Loc,
				Params: []lbs.Param{{Name: "cat", Value: cats[rng.Intn(len(cats))]}},
			})
			if err != nil {
				return nil, err
			}
			requests++
			answerTotal += len(answer)
		}
		hits, _ := csp.CacheStats()

		// 4. The attacks, replayed over what actually leaked.
		log := provider.Log()
		minAnon := db.Len()
		for _, ar := range log {
			if n := len(attacker.Candidates(policy, ar.Cloak, attacker.PolicyAware)); n < minAnon {
				minAnon = n
			}
		}
		if len(log) == 0 {
			minAnon = 0
		}
		leaks := 0
		for _, f := range attacker.FrequencyAttack(policy, log) {
			if f.Exposed {
				leaks++
			}
		}

		sr := SnapshotReport{
			Snapshot:        s,
			MaintenanceTime: maintenance,
			RowsRecomputed:  rows,
			RowsExtracted:   rowsExtracted,
			CloaksChanged:   cloaksChanged,
			Delta:           isDelta,
			PolicyCost:      policy.Cost(),
			AvgCloakArea:    policy.AvgArea(),
			Requests:        requests,
			ProviderTrips:   len(log),
			CacheHits:       hits,
			MinAnonymity:    minAnon,
			FrequencyLeaks:  leaks,
		}
		if requests > 0 {
			sr.AvgAnswerSize = float64(answerTotal) / float64(requests)
		}
		if len(log) > 0 && minAnon < cfg.K {
			report.BreachedSnapshots++
		}
		report.Snapshots = append(report.Snapshots, sr)
	}
	return report, nil
}

func jitter(rng *rand.Rand, v int32, sigma float64, side int32) int32 {
	x := float64(v) + rng.NormFloat64()*sigma
	if x < 0 {
		return 0
	}
	if x >= float64(side) {
		return side - 1
	}
	return int32(x)
}
