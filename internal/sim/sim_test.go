package sim

import (
	"testing"
)

func TestRunJitterModel(t *testing.T) {
	rep, err := Run(Config{Users: 2000, K: 15, Snapshots: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Snapshots) != 5 {
		t.Fatalf("snapshots = %d", len(rep.Snapshots))
	}
	if rep.BreachedSnapshots != 0 {
		t.Fatalf("policy-aware anonymity breached in %d snapshots", rep.BreachedSnapshots)
	}
	for i, s := range rep.Snapshots {
		if s.PolicyCost <= 0 || s.AvgCloakArea <= 0 {
			t.Fatalf("snapshot %d: degenerate policy metrics %+v", i, s)
		}
		if s.ProviderTrips > s.Requests {
			t.Fatalf("snapshot %d: more provider trips (%d) than requests (%d)",
				i, s.ProviderTrips, s.Requests)
		}
		if s.Requests > 0 && s.MinAnonymity < 15 {
			t.Fatalf("snapshot %d: min anonymity %d below k", i, s.MinAnonymity)
		}
		if s.FrequencyLeaks != 0 {
			t.Fatalf("snapshot %d: cache failed, %d frequency leaks", i, s.FrequencyLeaks)
		}
		if i > 0 && s.RowsRecomputed == 0 {
			t.Fatalf("snapshot %d: movement recomputed no rows", i)
		}
	}
}

func TestRunRoadNetworkModel(t *testing.T) {
	rep, err := Run(Config{Users: 1500, K: 10, Snapshots: 4, RoadNetwork: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BreachedSnapshots != 0 {
		t.Fatalf("breached %d snapshots", rep.BreachedSnapshots)
	}
	// Road-network movement keeps snapshots correlated, so incremental
	// maintenance should touch well under half of the ~|D|/k tree rows
	// per 10-second step.
	for i, s := range rep.Snapshots[1:] {
		if s.RowsRecomputed == 0 {
			t.Fatalf("step %d: no rows recomputed despite movement", i+1)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{Users: 0, K: 5},
		{Users: 100, K: 0},
		{Users: 3, K: 10},
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Config{Users: 800, K: 8, Snapshots: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Users: 800, K: 8, Snapshots: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Snapshots {
		x, y := a.Snapshots[i], b.Snapshots[i]
		if x.PolicyCost != y.PolicyCost || x.Requests != y.Requests ||
			x.ProviderTrips != y.ProviderTrips || x.MinAnonymity != y.MinAnonymity {
			t.Fatalf("snapshot %d diverged between identical seeds:\n%+v\n%+v", i, x, y)
		}
	}
}
