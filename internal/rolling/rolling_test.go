package rolling

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"policyanon/internal/attacker"
	"policyanon/internal/geo"
	"policyanon/internal/location"
)

func makeDB(t testing.TB, n int, side int32, seed int64) *location.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := location.New(n)
	for i := 0; i < n; i++ {
		if err := db.Add(fmt.Sprintf("u%04d", i),
			geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestInitialPublish(t *testing.T) {
	const k = 5
	r, err := New(makeDB(t, 100, 256, 1), geo.NewRect(0, 0, 256, 256), k)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 1 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
	cloak, err := r.CloakOf("u0042")
	if err != nil {
		t.Fatal(err)
	}
	if cloak.Empty() {
		t.Fatal("empty cloak")
	}
	if !attacker.IsKAnonymous(r.Policy(), k, attacker.PolicyAware) {
		t.Fatal("published policy breached")
	}
}

func TestCommitPublishesNewEpochAndKeepsSafety(t *testing.T) {
	const (
		k    = 4
		side = int32(256)
	)
	r, err := New(makeDB(t, 80, side, 2), geo.NewRect(0, 0, side, side), k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 5; round++ {
		for j := 0; j < 10; j++ {
			id := fmt.Sprintf("u%04d", rng.Intn(80))
			if err := r.Move(id, geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := r.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if st.PendingMoves != 10 {
			t.Fatalf("round %d: pending %d", round, st.PendingMoves)
		}
		if st.Epoch != int64(round+2) {
			t.Fatalf("round %d: epoch %d", round, st.Epoch)
		}
		pol := r.Policy()
		if !attacker.IsKAnonymous(pol, k, attacker.PolicyAware) {
			t.Fatalf("round %d: published policy breached", round)
		}
		// The published pair is self-consistent: cloaks mask the
		// snapshot the policy was built for.
		db := pol.DB()
		for i := 0; i < db.Len(); i++ {
			if !pol.CloakAt(i).ContainsClosed(db.At(i).Loc) {
				t.Fatalf("round %d: inconsistent (snapshot, policy) pair", round)
			}
		}
	}
}

func TestMoveUnknownUser(t *testing.T) {
	r, err := New(makeDB(t, 20, 64, 4), geo.NewRect(0, 0, 64, 64), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Move("ghost", geo.Point{X: 1, Y: 1}); err == nil {
		t.Fatal("unknown user accepted")
	}
}

// Readers run lock-free against concurrent writers; run with -race.
func TestConcurrentLookupsDuringCommits(t *testing.T) {
	const (
		k    = 5
		side = int32(512)
		n    = 200
	)
	r, err := New(makeDB(t, n, side, 5), geo.NewRect(0, 0, side, side), k)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("u%04d", rng.Intn(n))
				pol := r.Policy()
				cloak, err := pol.CloakOf(id)
				if err != nil {
					t.Errorf("lookup failed: %v", err)
					return
				}
				// Consistency within the captured pair.
				loc, err := pol.DB().Lookup(id)
				if err != nil || !cloak.ContainsClosed(loc) {
					t.Errorf("inconsistent pair for %s", id)
					return
				}
			}
		}(w)
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		for j := 0; j < 5; j++ {
			id := fmt.Sprintf("u%04d", rng.Intn(n))
			if err := r.Move(id, geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if r.Epoch() != 21 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
}

func TestNewRejectsInsufficientUsers(t *testing.T) {
	if _, err := New(makeDB(t, 2, 64, 6), geo.NewRect(0, 0, 64, 64), 5); err == nil {
		t.Fatal("insufficient users accepted")
	}
}
