// Package rolling provides the serving-path wrapper around the core
// anonymizer: a CSP must answer cloak lookups continuously while the next
// snapshot's policy is being computed. Rolling keeps the published policy
// in an atomic pointer — reads never block — and performs movement
// ingestion, incremental maintenance, verification and policy swap under a
// single writer lock (Commit).
//
// Published policies are bound to immutable clones of the location
// snapshot, so readers always observe a consistent (snapshot, policy)
// pair: requests racing a snapshot boundary get either the old pair or
// the new pair, never a partial one.
//
// Publication is delta-native: while the chain from the last published
// policy is intact, Commit extracts only the cloaks that changed
// (Matrix.ExtractDelta) and derives the next published assignment by
// copy-on-write (Assignment.ApplyDelta), so committing a single user's
// move costs O(dirty subtree) instead of O(|D|). Any break in the chain —
// first publish, failed publish, delta mismatch — falls back to the full
// extract-clone-verify path and re-anchors it.
package rolling

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/verify"
)

// DefaultVerifyEvery is the default full-verification cadence of delta
// publishes: every Nth publish re-runs the full first-principles
// verification; the others are verified delta-scoped.
const DefaultVerifyEvery = 16

// Anonymizer is the rolling-policy server. Create with New, which takes
// ownership of db (callers must not mutate it afterwards).
type Anonymizer struct {
	k int

	// current holds the published policy over an immutable snapshot
	// clone; lookups read it lock-free.
	current atomic.Pointer[lbs.Assignment]
	epoch   atomic.Int64

	// mu serializes writers (Move/Commit) and guards everything below.
	mu      sync.Mutex
	db      *location.DB // live snapshot, owned by this Anonymizer
	anon    *core.Anonymizer
	pending int
	// pendingMv coalesces staged moves per record index, capturing each
	// record's From at its first move since the last successful publish —
	// exactly the parent state ApplyDelta validates against. Entries are
	// kept until a publish succeeds, so a failed Commit retries with the
	// full move set.
	pendingMv map[int]lbs.Move
	// lastPub is the published assignment matching the matrix's extraction
	// baseline; nil whenever the two may disagree, forcing a full publish.
	lastPub     *lbs.Assignment
	publishes   int64
	verifyEvery int

	// last*, set by publishLocked, feed Commit's Stats.
	lastRowsExtracted int
	lastCloaksChanged int
	lastDelta         bool
}

// New computes, verifies and publishes the initial policy.
func New(db *location.DB, bounds geo.Rect, k int) (*Anonymizer, error) {
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		return nil, err
	}
	r := &Anonymizer{
		k:           k,
		db:          db,
		anon:        anon,
		pendingMv:   make(map[int]lbs.Move),
		verifyEvery: DefaultVerifyEvery,
	}
	if err := r.publishLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// SetVerifyEvery sets the full-verification cadence for delta publishes
// (n <= 1 verifies every publish in full).
func (r *Anonymizer) SetVerifyEvery(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.verifyEvery = n
}

// publishLocked extracts, verifies and atomically publishes the current
// policy: through the copy-on-write delta chain while it is intact, from
// scratch over an immutable snapshot clone otherwise. Callers hold mu (or
// are in New before the value escapes).
func (r *Anonymizer) publishLocked() error {
	if r.lastPub != nil {
		changes, visited, err := r.anon.Matrix().ExtractDelta()
		if err == nil {
			mvs := make([]lbs.Move, 0, len(r.pendingMv))
			for _, mv := range r.pendingMv {
				mvs = append(mvs, mv)
			}
			pub, aerr := r.lastPub.ApplyDelta(mvs, changes)
			if aerr == nil {
				if verr := r.verifyLocked(pub); verr != nil {
					// The matrix baseline advanced past the published
					// policy when ExtractDelta succeeded.
					r.lastPub = nil
					return verr
				}
				r.storeLocked(pub, visited, len(changes), true)
				return nil
			}
			// Delta mismatch against the published parent: the matrix has
			// absorbed the changes, so drop the chain and publish in full.
			r.lastPub = nil
		}
		// ErrNoDeltaBaseline falls through likewise.
	}
	cloaks, err := r.anon.Matrix().Extract()
	if err != nil {
		return err
	}
	policy, err := lbs.NewAssignment(r.db.Clone(), cloaks)
	if err != nil {
		r.lastPub = nil
		return err
	}
	if rep := verify.Policy(policy, r.k); !rep.OK() {
		r.lastPub = nil
		return fmt.Errorf("rolling: refusing to publish: %s", rep.Problems[0])
	}
	r.storeLocked(policy, policy.Len(), policy.Len(), false)
	return nil
}

// verifyLocked gates one delta publish: delta-scoped except every
// verifyEvery-th publish, which re-anchors with the full verification.
func (r *Anonymizer) verifyLocked(pub *lbs.Assignment) error {
	var rep *verify.Report
	if pub.Delta() != nil && r.verifyEvery > 1 && (r.publishes+1)%int64(r.verifyEvery) != 0 {
		rep = verify.Delta(pub, r.k)
	} else {
		rep = verify.Policy(pub, r.k)
	}
	if !rep.OK() {
		return fmt.Errorf("rolling: refusing to publish: %s", rep.Problems[0])
	}
	return nil
}

// storeLocked swaps the published policy and re-anchors the delta chain.
func (r *Anonymizer) storeLocked(pub *lbs.Assignment, rowsExtracted, cloaksChanged int, delta bool) {
	r.current.Store(pub)
	r.epoch.Add(1)
	r.lastPub = pub
	r.publishes++
	clear(r.pendingMv)
	r.lastRowsExtracted = rowsExtracted
	r.lastCloaksChanged = cloaksChanged
	r.lastDelta = delta
}

// CloakOf returns the user's cloak under the currently published policy.
// It never blocks on policy recomputation.
func (r *Anonymizer) CloakOf(userID string) (geo.Rect, error) {
	return r.current.Load().CloakOf(userID)
}

// Policy returns the currently published (snapshot, policy) pair.
func (r *Anonymizer) Policy() *lbs.Assignment { return r.current.Load() }

// Epoch returns the number of policies published so far.
func (r *Anonymizer) Epoch() int64 { return r.epoch.Load() }

// Move stages one user relocation for the next snapshot. The published
// policy is unaffected until Commit.
func (r *Anonymizer) Move(userID string, to geo.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.db.Index(userID)
	if i < 0 {
		return fmt.Errorf("rolling: unknown user %q", userID)
	}
	mv, ok := r.pendingMv[i]
	if !ok {
		mv = lbs.Move{Index: i, From: r.db.At(i).Loc}
	}
	if err := r.anon.Move(i, to); err != nil {
		// The live state may be half-updated; force the next publish to go
		// from scratch rather than trust the chain.
		r.lastPub = nil
		return err
	}
	mv.To = to
	r.pendingMv[i] = mv
	r.pending++
	return nil
}

// Stats reports the outcome of a Commit.
type Stats struct {
	Epoch        int64
	PendingMoves int
	PolicyCost   int64
	CommitTime   time.Duration
	// RowsExtracted is the number of tree nodes the policy-exhibition pass
	// re-assigned (|D| for full publishes).
	RowsExtracted int
	// CloaksChanged is the number of per-user cloak rewrites this publish
	// carried (|D| for full publishes).
	CloaksChanged int
	// Delta marks a publish through the copy-on-write delta path.
	Delta bool
}

// Commit refreshes the configuration matrix incrementally, extracts and
// verifies the next policy, and publishes it atomically — by delta while
// the chain from the previous publish is intact.
func (r *Anonymizer) Commit() (Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	r.anon.Refresh()
	pending := r.pending
	if err := r.publishLocked(); err != nil {
		return Stats{}, err
	}
	r.pending = 0
	return Stats{
		Epoch:         r.epoch.Load(),
		PendingMoves:  pending,
		PolicyCost:    r.current.Load().Cost(),
		CommitTime:    time.Since(start),
		RowsExtracted: r.lastRowsExtracted,
		CloaksChanged: r.lastCloaksChanged,
		Delta:         r.lastDelta,
	}, nil
}
