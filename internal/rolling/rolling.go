// Package rolling provides the serving-path wrapper around the core
// anonymizer: a CSP must answer cloak lookups continuously while the next
// snapshot's policy is being computed. Rolling keeps the published policy
// in an atomic pointer — reads never block — and performs movement
// ingestion, incremental maintenance, verification and policy swap under a
// single writer lock (Commit).
//
// Published policies are bound to immutable clones of the location
// snapshot, so readers always observe a consistent (snapshot, policy)
// pair: requests racing a snapshot boundary get either the old pair or
// the new pair, never a partial one.
package rolling

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/lbs"
	"policyanon/internal/location"
	"policyanon/internal/verify"
)

// Anonymizer is the rolling-policy server. Create with New, which takes
// ownership of db (callers must not mutate it afterwards).
type Anonymizer struct {
	k int

	// current holds the published policy over an immutable snapshot
	// clone; lookups read it lock-free.
	current atomic.Pointer[lbs.Assignment]
	epoch   atomic.Int64

	// mu serializes writers (Move/Commit) and guards db/anon/pending.
	mu      sync.Mutex
	db      *location.DB // live snapshot, owned by this Anonymizer
	anon    *core.Anonymizer
	pending int
}

// New computes, verifies and publishes the initial policy.
func New(db *location.DB, bounds geo.Rect, k int) (*Anonymizer, error) {
	anon, err := core.NewAnonymizer(db, bounds, core.AnonymizerOptions{K: k})
	if err != nil {
		return nil, err
	}
	r := &Anonymizer{k: k, db: db, anon: anon}
	if err := r.publishLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// publishLocked extracts, verifies and atomically publishes the current
// policy over an immutable snapshot clone. Callers hold mu (or are in New
// before the value escapes).
func (r *Anonymizer) publishLocked() error {
	cloaks, err := r.anon.Matrix().Extract()
	if err != nil {
		return err
	}
	policy, err := lbs.NewAssignment(r.db.Clone(), cloaks)
	if err != nil {
		return err
	}
	if rep := verify.Policy(policy, r.k); !rep.OK() {
		return fmt.Errorf("rolling: refusing to publish: %s", rep.Problems[0])
	}
	r.current.Store(policy)
	r.epoch.Add(1)
	return nil
}

// CloakOf returns the user's cloak under the currently published policy.
// It never blocks on policy recomputation.
func (r *Anonymizer) CloakOf(userID string) (geo.Rect, error) {
	return r.current.Load().CloakOf(userID)
}

// Policy returns the currently published (snapshot, policy) pair.
func (r *Anonymizer) Policy() *lbs.Assignment { return r.current.Load() }

// Epoch returns the number of policies published so far.
func (r *Anonymizer) Epoch() int64 { return r.epoch.Load() }

// Move stages one user relocation for the next snapshot. The published
// policy is unaffected until Commit.
func (r *Anonymizer) Move(userID string, to geo.Point) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.db.Index(userID)
	if i < 0 {
		return fmt.Errorf("rolling: unknown user %q", userID)
	}
	if err := r.anon.Move(i, to); err != nil {
		return err
	}
	r.pending++
	return nil
}

// Stats reports the outcome of a Commit.
type Stats struct {
	Epoch        int64
	PendingMoves int
	PolicyCost   int64
	CommitTime   time.Duration
}

// Commit refreshes the configuration matrix incrementally, extracts and
// verifies the next policy, and publishes it atomically.
func (r *Anonymizer) Commit() (Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	r.anon.Refresh()
	pending := r.pending
	if err := r.publishLocked(); err != nil {
		return Stats{}, err
	}
	r.pending = 0
	return Stats{
		Epoch:        r.epoch.Load(),
		PendingMoves: pending,
		PolicyCost:   r.current.Load().Cost(),
		CommitTime:   time.Since(start),
	}, nil
}
