package rolling

import (
	"fmt"
	"math/rand"
	"testing"

	"policyanon/internal/core"
	"policyanon/internal/geo"
	"policyanon/internal/verify"
)

// TestCommitPublishesDelta pins the serving path's delta publication: after
// the initial full publish, commits ride the copy-on-write chain, rewrite
// only a few cloaks, and stay byte-identical to a from-scratch policy.
func TestCommitPublishesDelta(t *testing.T) {
	const (
		k    = 5
		n    = 150
		side = int32(256)
	)
	r, err := New(makeDB(t, n, side, 9), geo.NewRect(0, 0, side, side), k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < 8; round++ {
		for j := 0; j < 4; j++ {
			id := fmt.Sprintf("u%04d", rng.Intn(n))
			if err := r.Move(id, geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := r.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Delta {
			t.Fatalf("round %d: commit did not publish a delta", round)
		}
		if st.CloaksChanged >= n {
			t.Fatalf("round %d: delta publish rewrote %d of %d cloaks", round, st.CloaksChanged, n)
		}
		if r.Policy().Delta() == nil {
			t.Fatalf("round %d: published policy carries no delta", round)
		}
	}
	// Parity: the chain tip equals a from-scratch policy over the same
	// snapshot, and survives the full verification.
	pub := r.Policy()
	fresh, err := core.NewAnonymizer(pub.DB().Clone(), geo.NewRect(0, 0, side, side), core.AnonymizerOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Policy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if pub.CloakAt(i) != want.CloakAt(i) {
			t.Fatalf("cloak %d = %v, from-scratch %v", i, pub.CloakAt(i), want.CloakAt(i))
		}
	}
	if rep := verify.Policy(pub, k); !rep.OK() {
		t.Fatalf("chain tip failed full verification: %v", rep.Problems)
	}
}

// TestCommitDeltaChainBreaksOnBadMove pins the chain-hygiene rule: a failed
// Move (half-updated live state) forces the next publish to go from
// scratch rather than trust the delta chain.
func TestCommitDeltaChainBreaksOnBadMove(t *testing.T) {
	const (
		k    = 4
		n    = 80
		side = int32(256)
	)
	r, err := New(makeDB(t, n, side, 11), geo.NewRect(0, 0, side, side), k)
	if err != nil {
		t.Fatal(err)
	}
	// Out of tree bounds: Move fails after the live DB may have been
	// touched, so the chain must not be trusted.
	if err := r.Move("u0001", geo.Point{X: side * 4, Y: side * 4}); err == nil {
		t.Fatal("out-of-bounds move accepted")
	}
	// Re-sync the half-updated record with a valid move.
	if err := r.Move("u0001", geo.Point{X: 10, Y: 10}); err != nil {
		t.Fatal(err)
	}
	st, err := r.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delta {
		t.Fatal("publish after a failed Move rode the delta chain")
	}
	// The chain re-anchors on the full publish.
	if err := r.Move("u0003", geo.Point{X: 20, Y: 20}); err != nil {
		t.Fatal(err)
	}
	st, err = r.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Delta {
		t.Fatal("chain did not re-anchor after the full publish")
	}
}

// BenchmarkCommitSingleMove measures the serving-path publish cost of one
// user's move — the operation delta publication turns from O(|D|) into
// O(dirty subtree).
func BenchmarkCommitSingleMove(b *testing.B) {
	const (
		k    = 10
		n    = 20000
		side = int32(1 << 12)
	)
	rng := rand.New(rand.NewSource(12))
	r, err := New(makeDB(b, n, side, 12), geo.NewRect(0, 0, side, side), k)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("u%04d", rng.Intn(n))
		if err := r.Move(id, geo.Point{X: rng.Int31n(side), Y: rng.Int31n(side)}); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}
