package ledger

import "crypto/sha256"

// Merkle tree construction over event leaf hashes, RFC 6962 style with
// domain separation: leaf hashes are H(0x00 || canonical event bytes)
// (computed in Event.LeafHash), interior nodes H(0x01 || left || right).
// A level with an odd node count promotes its last node unchanged, so a
// batch of one event has root == leaf hash and every proof path length
// is at most ceil(log2(count)).

const (
	domainLeaf  = 0x00
	domainNode  = 0x01
	domainChain = 0x02
)

// hashNode combines two child hashes into their parent.
func hashNode(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{domainNode})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// buildLevels constructs the full tree bottom-up: levels[0] is the
// leaves, levels[len-1] is the single root. Empty input returns nil.
func buildLevels(leaves [][32]byte) [][][32]byte {
	if len(leaves) == 0 {
		return nil
	}
	levels := [][][32]byte{leaves}
	for cur := leaves; len(cur) > 1; {
		next := make([][32]byte, 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, hashNode(cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i]) // odd node promotes
			}
		}
		levels = append(levels, next)
		cur = next
	}
	return levels
}

// merkleRoot returns the root of the tree over leaves.
func merkleRoot(leaves [][32]byte) [32]byte {
	levels := buildLevels(leaves)
	if levels == nil {
		return [32]byte{}
	}
	return levels[len(levels)-1][0]
}

// auditPath extracts the inclusion proof for the leaf at index from
// prebuilt levels: one sibling per level where the node is paired (a
// promoted odd node contributes no step).
func auditPath(levels [][][32]byte, index int) []ProofStep {
	var path []ProofStep
	for _, level := range levels[:len(levels)-1] {
		if index%2 == 0 {
			if index+1 < len(level) {
				path = append(path, ProofStep{Sibling: hexHash(level[index+1]), Left: false})
			}
			// else: promoted — no sibling at this level
		} else {
			path = append(path, ProofStep{Sibling: hexHash(level[index-1]), Left: true})
		}
		index /= 2
	}
	return path
}

// foldPath recomputes the root implied by a leaf hash and its audit
// path. It is the verification counterpart of auditPath.
func foldPath(leaf [32]byte, path []ProofStep) ([32]byte, error) {
	cur := leaf
	for _, step := range path {
		sib, err := parseHash(step.Sibling)
		if err != nil {
			return [32]byte{}, err
		}
		if step.Left {
			cur = hashNode(sib, cur)
		} else {
			cur = hashNode(cur, sib)
		}
	}
	return cur, nil
}
