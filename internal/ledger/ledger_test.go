package ledger

import (
	"context"
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"policyanon/internal/metrics"
)

// newTestLedger returns a ledger with the background timer disabled, so
// tests control sealing deterministically via Seal.
func newTestLedger(t *testing.T, anchor Anchor, opts Options) *Ledger {
	t.Helper()
	opts.FlushInterval = -1
	l, err := New(anchor, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { l.Close(context.Background()) })
	return l
}

func appendN(t *testing.T, l *Ledger, n int, kind Kind) []uint64 {
	t.Helper()
	seqs := make([]uint64, n)
	for i := 0; i < n; i++ {
		seq, err := l.Append(context.Background(), kind, "bulkdp-binary", fmt.Sprintf("rid-%d", i),
			fmt.Sprintf(`{"i":%d}`, i))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		seqs[i] = seq
	}
	return seqs
}

func TestSealChainsBatches(t *testing.T) {
	anchor := NewMemAnchor()
	l := newTestLedger(t, anchor, Options{})
	appendN(t, l, 3, KindPolicyAudit)
	cp1, err := l.Seal(context.Background())
	if err != nil {
		t.Fatalf("seal 1: %v", err)
	}
	appendN(t, l, 5, KindRequestVerdict)
	cp2, err := l.Seal(context.Background())
	if err != nil {
		t.Fatalf("seal 2: %v", err)
	}
	if cp1.BatchSeq != 1 || cp2.BatchSeq != 2 {
		t.Fatalf("batch seqs = %d, %d; want 1, 2", cp1.BatchSeq, cp2.BatchSeq)
	}
	if cp1.FirstSeq != 1 || cp1.Count != 3 || cp2.FirstSeq != 4 || cp2.Count != 5 {
		t.Fatalf("ranges = [%d,+%d) [%d,+%d); want [1,+3) [4,+5)", cp1.FirstSeq, cp1.Count, cp2.FirstSeq, cp2.Count)
	}
	if cp2.PrevChainRoot != cp1.ChainRoot {
		t.Fatalf("batch 2 prev root %s != batch 1 root %s", cp2.PrevChainRoot, cp1.ChainRoot)
	}
	if err := cp1.Verify(); err != nil {
		t.Fatalf("cp1.Verify: %v", err)
	}
	if err := cp2.Verify(); err != nil {
		t.Fatalf("cp2.Verify: %v", err)
	}
	if got := len(anchor.Batches()); got != 2 {
		t.Fatalf("anchored %d batches, want 2", got)
	}
	st := l.Stats()
	if st.Events != 8 || st.Sealed != 8 || st.Pending != 0 || st.Batches != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ChainRoot != cp2.ChainRoot {
		t.Fatalf("stats root %s != latest %s", st.ChainRoot, cp2.ChainRoot)
	}
}

func TestSealEmptyIsNoop(t *testing.T) {
	l := newTestLedger(t, NewMemAnchor(), Options{})
	cp, err := l.Seal(context.Background())
	if err != nil || cp != nil {
		t.Fatalf("empty seal = %v, %v; want nil, nil", cp, err)
	}
	appendN(t, l, 1, KindBreach)
	first, err := l.Seal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	again, err := l.Seal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if again.ChainRoot != first.ChainRoot {
		t.Fatalf("no-op seal moved the chain: %s -> %s", first.ChainRoot, again.ChainRoot)
	}
}

func TestProveAndVerifyEverySize(t *testing.T) {
	// Batch sizes that exercise every merkle shape: single leaf, pair,
	// odd promotion, perfect tree, odd-at-multiple-levels.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			l := newTestLedger(t, NewMemAnchor(), Options{})
			seqs := appendN(t, l, n, KindRequestVerdict)
			if _, err := l.Seal(context.Background()); err != nil {
				t.Fatal(err)
			}
			for _, seq := range seqs {
				p, err := l.Prove(context.Background(), seq)
				if err != nil {
					t.Fatalf("Prove(%d): %v", seq, err)
				}
				if err := p.Verify(); err != nil {
					t.Fatalf("Verify(%d): %v", seq, err)
				}
			}
		})
	}
}

func TestProofSurvivesJSONRoundTrip(t *testing.T) {
	// The proof must verify from its wire form alone — that is the whole
	// point of serving it over HTTP.
	l := newTestLedger(t, NewMemAnchor(), Options{})
	seqs := appendN(t, l, 5, KindBreach)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	p, err := l.Prove(context.Background(), seqs[2])
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Proof
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := decoded.Verify(); err != nil {
		t.Fatalf("round-tripped proof failed: %v", err)
	}
}

func TestProofDetectsMutation(t *testing.T) {
	l := newTestLedger(t, NewMemAnchor(), Options{})
	seqs := appendN(t, l, 6, KindRequestVerdict)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	fresh := func() *Proof {
		p, err := l.Prove(context.Background(), seqs[3])
		if err != nil {
			t.Fatal(err)
		}
		cp := *p
		cp.Path = append([]ProofStep(nil), p.Path...)
		return &cp
	}
	mutations := map[string]func(*Proof){
		"event detail": func(p *Proof) { p.Event.Detail = `{"i":999}` },
		"event kind":   func(p *Proof) { p.Event.Kind = KindBreach },
		"event rid":    func(p *Proof) { p.Event.RID = "forged" },
		"event seq":    func(p *Proof) { p.Event.Seq++; p.Seq++; p.Index++ },
		"leaf hash":    func(p *Proof) { p.LeafHash = flipHex(p.LeafHash) },
		"path sibling": func(p *Proof) { p.Path[0].Sibling = flipHex(p.Path[0].Sibling) },
		"path side":    func(p *Proof) { p.Path[0].Left = !p.Path[0].Left },
		"batch root":   func(p *Proof) { p.Checkpoint.BatchRoot = flipHex(p.Checkpoint.BatchRoot) },
		"chain root":   func(p *Proof) { p.Checkpoint.ChainRoot = flipHex(p.Checkpoint.ChainRoot) },
		"signature":    func(p *Proof) { p.Checkpoint.Signature = flipHex(p.Checkpoint.Signature) },
		"sealed time":  func(p *Proof) { p.Checkpoint.SealedMs++ },
	}
	for name, mutate := range mutations {
		p := fresh()
		if err := p.Verify(); err != nil {
			t.Fatalf("%s: baseline proof invalid: %v", name, err)
		}
		mutate(p)
		if err := p.Verify(); err == nil {
			t.Errorf("%s: mutated proof still verifies", name)
		}
	}
}

// flipHex flips one bit of a hex string's first byte.
func flipHex(s string) string {
	b := []byte(s)
	if b[0] == '0' {
		b[0] = '1'
	} else {
		b[0] = '0'
	}
	return string(b)
}

func TestProveErrors(t *testing.T) {
	l := newTestLedger(t, NewMemAnchor(), Options{Retain: 1})
	appendN(t, l, 2, KindPolicyAudit)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2, KindPolicyAudit)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, KindPolicyAudit) // pending, seq 5

	if _, err := l.Prove(context.Background(), 1); !strings.Contains(fmt.Sprint(err), ErrEvicted.Error()) {
		t.Fatalf("evicted batch: got %v, want ErrEvicted", err)
	}
	if _, err := l.Prove(context.Background(), 3); err != nil {
		t.Fatalf("retained batch: %v", err)
	}
	if _, err := l.Prove(context.Background(), 5); !strings.Contains(fmt.Sprint(err), ErrPending.Error()) {
		t.Fatalf("pending event: got %v, want ErrPending", err)
	}
	if _, err := l.Prove(context.Background(), 99); !strings.Contains(fmt.Sprint(err), ErrUnknownSeq.Error()) {
		t.Fatalf("unknown seq: got %v, want ErrUnknownSeq", err)
	}
	if _, err := l.Prove(context.Background(), 0); !strings.Contains(fmt.Sprint(err), ErrUnknownSeq.Error()) {
		t.Fatalf("seq 0: got %v, want ErrUnknownSeq", err)
	}
}

func TestMaxBatchTriggersAsyncSeal(t *testing.T) {
	// With the timer disabled, filling MaxBatch must still seal via the
	// kick channel.
	anchor := NewMemAnchor()
	l, err := New(anchor, Options{MaxBatch: 4, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close(context.Background())
	for i := 0; i < 4; i++ {
		if _, err := l.Append(context.Background(), KindRequestVerdict, "e", "", ""); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(anchor.Batches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch-full kick never sealed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := anchor.Batches()[0].Checkpoint.Count; got != 4 {
		t.Fatalf("sealed %d events, want 4", got)
	}
}

func TestTimerFlush(t *testing.T) {
	anchor := NewMemAnchor()
	l, err := New(anchor, Options{FlushInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close(context.Background())
	if _, err := l.Append(context.Background(), KindBreach, "e", "", ""); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(anchor.Batches()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flush timer never sealed")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseSealsPendingAndRejectsAppends(t *testing.T) {
	anchor := NewMemAnchor()
	l, err := New(anchor, Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(context.Background(), KindPolicyAudit, "e", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(anchor.Batches()); got != 1 {
		t.Fatalf("close sealed %d batches, want 1", got)
	}
	if _, err := l.Append(context.Background(), KindPolicyAudit, "e", "", ""); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := newTestLedger(t, NewMemAnchor(), Options{MaxBatch: 32})
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(context.Background(), KindRequestVerdict, "e", "", ""); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Events != goroutines*each {
		t.Fatalf("events = %d, want %d", st.Events, goroutines*each)
	}
	if st.Pending != 0 {
		t.Fatalf("pending = %d after final seal", st.Pending)
	}
	// Every sealed event must be provable; spot-check across the range.
	for _, seq := range []uint64{1, goroutines * each / 2, goroutines * each} {
		p, err := l.Prove(context.Background(), seq)
		if err != nil {
			t.Fatalf("Prove(%d): %v", seq, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("Verify(%d): %v", seq, err)
		}
	}
}

func TestLedgerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	anchor := NewMemAnchor()
	l := newTestLedger(t, anchor, Options{Registry: reg})
	appendN(t, l, 3, KindPolicyAudit)
	appendN(t, l, 2, KindBreach)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ledger_events").Value(); got != 5 {
		t.Fatalf("ledger_events = %d, want 5", got)
	}
	if got := reg.Counter("ledger_events:" + string(KindBreach)).Value(); got != 2 {
		t.Fatalf("ledger_events:breach = %d, want 2", got)
	}
	if got := reg.Counter("ledger_batches").Value(); got != 1 {
		t.Fatalf("ledger_batches = %d, want 1", got)
	}
	if got := reg.Histogram("ledger_seal").Summary().Count; got != 1 {
		t.Fatalf("ledger_seal count = %d, want 1", got)
	}
	if got := reg.Gauge("ledger_queue_depth").Value(); got != 0 {
		t.Fatalf("ledger_queue_depth = %d, want 0", got)
	}
}

// --- file anchor ---

func TestFileAnchorRoundTripAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	anchor, err := OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLedger(t, NewMemAnchorWrap(anchor), Options{})
	appendN(t, l, 4, KindPolicyAudit)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, KindBreach)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Close(context.Background())
	anchor.Close()

	res, err := VerifyAnchorFile(path, nil)
	if err != nil {
		t.Fatalf("VerifyAnchorFile: %v", err)
	}
	if res.Batches != 2 || res.Events != 7 {
		t.Fatalf("verified %d batches / %d events, want 2 / 7", res.Batches, res.Events)
	}
	if res.ByKind[KindBreach] != 3 {
		t.Fatalf("breach events = %d, want 3", res.ByKind[KindBreach])
	}
	if len(res.PublicKeys) != 1 {
		t.Fatalf("keys = %v, want exactly one", res.PublicKeys)
	}
}

// NewMemAnchorWrap adapts a FileAnchor for newTestLedger cleanup order
// (it is just the anchor itself; the helper name documents intent).
func NewMemAnchorWrap(a Anchor) Anchor { return a }

func TestFileAnchorTamperDetection(t *testing.T) {
	// The acceptance test of the tamper-evident design: flip one byte in
	// the sealed anchor file, or drop one event, and verification fails.
	build := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "ledger.log")
		anchor, err := OpenFileAnchor(path, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		l := newTestLedger(t, anchor, Options{})
		appendN(t, l, 5, KindPolicyAudit)
		if _, err := l.Seal(context.Background()); err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 5, KindBreach)
		if _, err := l.Seal(context.Background()); err != nil {
			t.Fatal(err)
		}
		l.Close(context.Background())
		anchor.Close()
		return path
	}

	t.Run("flip one byte", func(t *testing.T) {
		path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a byte inside the first record's detail payload.
		i := strings.Index(string(data), `{\"i\":2}`)
		if i < 0 {
			i = len(data) / 4
		}
		data[i] ^= 0x01
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAnchorFile(path, nil); err == nil {
			t.Fatal("offline verifier accepted a flipped byte")
		}
		if _, err := OpenFileAnchor(path, nil, nil); err == nil {
			t.Fatal("writer recovery accepted a flipped byte")
		}
	})

	t.Run("drop one event", func(t *testing.T) {
		path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		var b SealedBatch
		if err := json.Unmarshal([]byte(lines[0]), &b); err != nil {
			t.Fatal(err)
		}
		b.Events = b.Events[:len(b.Events)-1] // operator drops a record
		b.Checkpoint.Count = len(b.Events)   // even doctoring the count
		doctored, err := json.Marshal(&b)
		if err != nil {
			t.Fatal(err)
		}
		lines[0] = string(doctored) + "\n"
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAnchorFile(path, nil); err == nil {
			t.Fatal("offline verifier accepted a dropped event")
		}
	})

	t.Run("drop whole batch", func(t *testing.T) {
		path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		// Excise the first batch entirely; the second batch's prev-chain
		// linkage must expose the hole.
		if err := os.WriteFile(path, []byte(strings.Join(lines[1:], "")), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAnchorFile(path, nil); err == nil {
			t.Fatal("offline verifier accepted an excised batch")
		}
	})

	t.Run("reorder events", func(t *testing.T) {
		path := build(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitAfter(string(data), "\n")
		var b SealedBatch
		if err := json.Unmarshal([]byte(lines[0]), &b); err != nil {
			t.Fatal(err)
		}
		b.Events[0], b.Events[1] = b.Events[1], b.Events[0]
		doctored, err := json.Marshal(&b)
		if err != nil {
			t.Fatal(err)
		}
		lines[0] = string(doctored) + "\n"
		if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o600); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyAnchorFile(path, nil); err == nil {
			t.Fatal("offline verifier accepted reordered events")
		}
	})
}

func TestFileAnchorCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	anchor, err := OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLedger(t, anchor, Options{})
	appendN(t, l, 3, KindPolicyAudit)
	cp1, err := l.Seal(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, KindPolicyAudit)
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Close(context.Background())
	anchor.Close()

	// Simulate a crash mid-append: tear the second record in half.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	torn := lines[0] + lines[1][:len(lines[1])/2]
	if err := os.WriteFile(path, []byte(torn), 0o600); err != nil {
		t.Fatal(err)
	}

	// The strict offline verifier refuses the torn file...
	if _, err := VerifyAnchorFile(path, nil); err == nil {
		t.Fatal("offline verifier accepted a torn tail")
	}
	// ...but the writer recovers: truncate the tail, resume the chain.
	anchor2, err := OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	last, ok := anchor2.Last()
	if !ok || last.BatchSeq != 1 {
		t.Fatalf("recovered head = %+v, %v; want batch 1", last, ok)
	}
	l2, err := New(anchor2, Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The resumed ledger continues the sequence after the surviving batch.
	seq, err := l2.Append(context.Background(), KindBreach, "e", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if want := cp1.FirstSeq + uint64(cp1.Count); seq != want {
		t.Fatalf("resumed seq = %d, want %d", seq, want)
	}
	if _, err := l2.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	l2.Close(context.Background())
	anchor2.Close()

	// After recovery + new seals the file verifies end to end again.
	res, err := VerifyAnchorFile(path, nil)
	if err != nil {
		t.Fatalf("post-recovery verify: %v", err)
	}
	if res.Batches != 2 || res.Events != 4 {
		t.Fatalf("post-recovery = %d batches / %d events, want 2 / 4", res.Batches, res.Events)
	}
}

func TestChainResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ledger.log")
	key, err := LoadOrCreateKey(filepath.Join(dir, "ledger.key"))
	if err != nil {
		t.Fatal(err)
	}

	anchor, err := OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(anchor, Options{FlushInterval: -1, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(context.Background(), KindPolicyAudit, "e", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Close(context.Background())
	anchor.Close()

	// "Restart": same key file, same anchor file.
	key2, err := LoadOrCreateKey(filepath.Join(dir, "ledger.key"))
	if err != nil {
		t.Fatal(err)
	}
	if !key.Equal(key2) {
		t.Fatal("key did not persist across restart")
	}
	anchor2, err := OpenFileAnchor(path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := New(anchor2, Options{FlushInterval: -1, Key: key2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(context.Background(), KindBreach, "e", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Seal(context.Background()); err != nil {
		t.Fatal(err)
	}
	l2.Close(context.Background())
	anchor2.Close()

	res, err := VerifyAnchorFile(path, ed25519.PrivateKey(key).Public().(ed25519.PublicKey))
	if err != nil {
		t.Fatalf("pinned verify: %v", err)
	}
	if res.Batches != 2 || res.Events != 2 {
		t.Fatalf("resumed chain = %d batches / %d events, want 2 / 2", res.Batches, res.Events)
	}
	if len(res.PublicKeys) != 1 {
		t.Fatalf("one persisted key must sign both runs, got %v", res.PublicKeys)
	}

	// Pinning a different key fails.
	otherPub, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAnchorFile(path, otherPub); err == nil {
		t.Fatal("verify accepted the wrong pinned key")
	}
}

func TestAnchorSealFailureKeepsEvents(t *testing.T) {
	fa := &failingAnchor{}
	l := newTestLedger(t, fa, Options{})
	appendN(t, l, 2, KindPolicyAudit)
	if _, err := l.Seal(context.Background()); err == nil {
		t.Fatal("seal with failing anchor succeeded")
	}
	if st := l.Stats(); st.Pending != 2 {
		t.Fatalf("pending = %d after failed seal, want 2 (events must not be lost)", st.Pending)
	}
	fa.ok = true
	cp, err := l.Seal(context.Background())
	if err != nil {
		t.Fatalf("retry seal: %v", err)
	}
	if cp.Count != 2 || cp.FirstSeq != 1 {
		t.Fatalf("retried checkpoint = %+v", cp)
	}
}

type failingAnchor struct {
	MemAnchor
	ok bool
}

func (a *failingAnchor) Seal(b *SealedBatch) error {
	if !a.ok {
		return fmt.Errorf("anchor unavailable")
	}
	return a.MemAnchor.Seal(b)
}
