package ledger

import (
	"bufio"
	"bytes"
	"crypto/ed25519"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"policyanon/internal/metrics"
)

// MemAnchor is the in-memory anchor: sealed batches accumulate in a
// slice. It is the mock for tests and the default for deployments that
// only need proofs over the retained window.
type MemAnchor struct {
	mu      sync.Mutex
	batches []*SealedBatch
}

// NewMemAnchor returns an empty in-memory anchor.
func NewMemAnchor() *MemAnchor { return &MemAnchor{} }

// Seal implements Anchor.
func (a *MemAnchor) Seal(b *SealedBatch) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches = append(a.batches, b)
	return nil
}

// Last implements Anchor.
func (a *MemAnchor) Last() (Checkpoint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.batches) == 0 {
		return Checkpoint{}, false
	}
	return a.batches[len(a.batches)-1].Checkpoint, true
}

// Batches returns the anchored history (for tests).
func (a *MemAnchor) Batches() []*SealedBatch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*SealedBatch(nil), a.batches...)
}

// FileAnchor is the file-backed anchor: an append-only log with one
// JSON record per line, each a SealedBatch, fsynced per seal. Opening
// an existing file replays and verifies the whole chain (any mutation
// fails the open); a torn final line — the crash-safe case, a process
// killed mid-write — is truncated away, which is safe because a seal is
// only acknowledged after the fsync of its complete line.
type FileAnchor struct {
	path   string
	f      *os.File
	last   Checkpoint
	hasCp  bool
	reg    *metrics.Registry
	logger *slog.Logger
	mu     sync.Mutex
}

// OpenFileAnchor opens (creating if missing) the append-only anchor log
// at path. reg, when non-nil, receives the ledger_anchor_fsync latency
// histogram; logger, when non-nil, gets a structured recovery record if
// a torn tail was truncated.
func OpenFileAnchor(path string, reg *metrics.Registry, logger *slog.Logger) (*FileAnchor, error) {
	res, tornAt, err := replayAnchor(path, nil)
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, err
		}
		res = &VerifyResult{}
		tornAt = -1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	if tornAt >= 0 {
		// Crash recovery: drop the torn tail so the next seal appends a
		// well-formed line.
		if err := f.Truncate(tornAt); err != nil {
			f.Close()
			return nil, fmt.Errorf("ledger: truncate torn anchor tail: %w", err)
		}
		if logger != nil {
			logger.Warn("ledger: anchor recovered from torn tail",
				"path", path, "truncatedAt", tornAt, "batches", res.Batches)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	a := &FileAnchor{path: path, f: f, reg: reg, logger: logger}
	if res.Batches > 0 {
		a.last = res.LastCheckpoint
		a.hasCp = true
	}
	return a, nil
}

// Seal implements Anchor: marshal, append, fsync. The batch is durable
// when Seal returns.
func (a *FileAnchor) Seal(b *SealedBatch) error {
	line, err := json.Marshal(b)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.f.Write(line); err != nil {
		return fmt.Errorf("ledger: anchor append: %w", err)
	}
	start := time.Now()
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("ledger: anchor fsync: %w", err)
	}
	if a.reg != nil {
		a.reg.Histogram("ledger_anchor_fsync").Observe(time.Since(start))
	}
	a.last = b.Checkpoint
	a.hasCp = true
	return nil
}

// Last implements Anchor.
func (a *FileAnchor) Last() (Checkpoint, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.last, a.hasCp
}

// Path returns the anchor log's path.
func (a *FileAnchor) Path() string { return a.path }

// Close closes the underlying file. The owning Ledger must be closed
// first (its final seal still needs the file).
func (a *FileAnchor) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}

// VerifyResult summarizes a successful anchor replay.
type VerifyResult struct {
	// Batches and Events count the verified history.
	Batches int    `json:"batches"`
	Events  uint64 `json:"events"`
	// ByKind counts events per taxonomy kind.
	ByKind map[Kind]uint64 `json:"byKind,omitempty"`
	// LastCheckpoint is the chain head; its ChainRoot commits the whole
	// file.
	LastCheckpoint Checkpoint `json:"lastCheckpoint"`
	// PublicKeys lists every signing key seen, in order of first use (a
	// restarted server with a fresh ephemeral key starts a new one).
	PublicKeys []string `json:"publicKeys,omitempty"`
}

// VerifyAnchorFile replays the anchor log at path and verifies every
// batch: leaf hashes recompute from the recorded events, the Merkle
// root matches the checkpoint, chain roots link and recompute, sequence
// numbers are contiguous, and every signature verifies. pin, when
// non-nil, additionally requires every checkpoint to be signed by that
// key. Any mutation — a flipped byte, a dropped or reordered event, an
// excised batch — fails with an error naming the first bad batch. This
// is the offline verifier behind `anoncli verify-ledger`.
func VerifyAnchorFile(path string, pin ed25519.PublicKey) (*VerifyResult, error) {
	res, tornAt, err := replayAnchor(path, pin)
	if err != nil {
		return nil, err
	}
	if tornAt >= 0 {
		return nil, fmt.Errorf("ledger: %s: torn record at byte %d (crash artifact or truncation) after %d verified batches",
			path, tornAt, res.Batches)
	}
	return res, nil
}

// replayAnchor reads and verifies the anchor log. A malformed FINAL
// record is reported via tornAt (its byte offset) rather than an error,
// so the writer's crash recovery and the strict offline verifier can
// share one replay. Malformed records elsewhere are hard errors.
func replayAnchor(path string, pin ed25519.PublicKey) (res *VerifyResult, tornAt int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, -1, err
	}
	defer f.Close()
	res = &VerifyResult{ByKind: make(map[Kind]uint64)}
	tornAt = -1

	var offset int64
	var prevChain [32]byte
	var nextSeq uint64 = 1
	seenKeys := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		lineStart := offset
		offset += int64(len(line)) + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var b SealedBatch
		if err := json.Unmarshal(line, &b); err != nil {
			// A record that fails to parse is a torn tail only when it is
			// the final line; otherwise the file is corrupt in the middle.
			if !scannerHasMore(sc) {
				return res, lineStart, nil
			}
			return nil, -1, fmt.Errorf("ledger: %s: batch %d: corrupt record: %w", path, res.Batches+1, err)
		}
		if err := verifyBatch(&b, prevChain, nextSeq, res.Batches == 0); err != nil {
			return nil, -1, fmt.Errorf("ledger: %s: %w", path, err)
		}
		if pin != nil && b.Checkpoint.PublicKey != hex.EncodeToString(pin) {
			return nil, -1, fmt.Errorf("ledger: %s: batch %d signed by %s, not the pinned key",
				path, b.Checkpoint.BatchSeq, rootPrefix(b.Checkpoint.PublicKey))
		}
		if !seenKeys[b.Checkpoint.PublicKey] {
			seenKeys[b.Checkpoint.PublicKey] = true
			res.PublicKeys = append(res.PublicKeys, b.Checkpoint.PublicKey)
		}
		prevChain, _ = parseHash(b.Checkpoint.ChainRoot)
		nextSeq = b.Checkpoint.FirstSeq + uint64(b.Checkpoint.Count)
		res.Batches++
		res.Events += uint64(len(b.Events))
		for i := range b.Events {
			res.ByKind[b.Events[i].Kind]++
		}
		res.LastCheckpoint = b.Checkpoint
	}
	if err := sc.Err(); err != nil {
		return nil, -1, fmt.Errorf("ledger: %s: %w", path, err)
	}
	return res, tornAt, nil
}

// scannerHasMore reports whether sc has any non-blank content left.
// bufio.Scanner gives no direct access, so peek by scanning ahead — the
// replay only calls this on the error path, where the extra scan cost
// is irrelevant.
func scannerHasMore(sc *bufio.Scanner) bool {
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) > 0 {
			return true
		}
	}
	return false
}

// verifyBatch checks one sealed batch against the replay state: event
// sequence contiguity, leaf and Merkle root recomputation, chain
// linkage, and the checkpoint's own consistency + signature.
func verifyBatch(b *SealedBatch, prevChain [32]byte, nextSeq uint64, genesis bool) error {
	cp := &b.Checkpoint
	if cp.Count != len(b.Events) {
		return fmt.Errorf("batch %d: checkpoint counts %d events, record carries %d (event dropped or injected)",
			cp.BatchSeq, cp.Count, len(b.Events))
	}
	if len(b.Events) == 0 {
		return fmt.Errorf("batch %d: empty batch", cp.BatchSeq)
	}
	if cp.FirstSeq != nextSeq {
		return fmt.Errorf("batch %d: first seq %d, want %d (batch dropped or reordered)",
			cp.BatchSeq, cp.FirstSeq, nextSeq)
	}
	leaves := make([][32]byte, len(b.Events))
	for i := range b.Events {
		if b.Events[i].Seq != cp.FirstSeq+uint64(i) {
			return fmt.Errorf("batch %d: event %d has seq %d, want %d (event dropped or reordered)",
				cp.BatchSeq, i, b.Events[i].Seq, cp.FirstSeq+uint64(i))
		}
		leaves[i] = b.Events[i].LeafHash()
	}
	root := merkleRoot(leaves)
	claimed, err := parseHash(cp.BatchRoot)
	if err != nil {
		return fmt.Errorf("batch %d: bad batch root: %w", cp.BatchSeq, err)
	}
	if subtle.ConstantTimeCompare(root[:], claimed[:]) != 1 {
		return fmt.Errorf("batch %d: events do not hash to the sealed root (event bytes mutated)", cp.BatchSeq)
	}
	recordedPrev, err := parseHash(cp.PrevChainRoot)
	if err != nil {
		return fmt.Errorf("batch %d: bad prev chain root: %w", cp.BatchSeq, err)
	}
	if genesis {
		// A resumed chain may start mid-history (the writer recovered its
		// head from this very file), but a standalone file starts at zero.
		if cp.BatchSeq == 1 && recordedPrev != [32]byte{} {
			return fmt.Errorf("batch 1: genesis prev chain root is nonzero")
		}
		prevChain = recordedPrev
	}
	if subtle.ConstantTimeCompare(recordedPrev[:], prevChain[:]) != 1 {
		return fmt.Errorf("batch %d: chain broken: prev root %s does not match predecessor %s",
			cp.BatchSeq, rootPrefix(cp.PrevChainRoot), rootPrefix(hexHash(prevChain)))
	}
	return cp.Verify()
}

// LoadOrCreateKey loads the Ed25519 signing key from path, generating
// and persisting (0600) a fresh seed when the file does not exist. The
// file holds the 32-byte seed as lowercase hex, so chains survive
// restarts under one identity.
func LoadOrCreateKey(path string) (ed25519.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err == nil {
		seed, derr := hex.DecodeString(string(bytes.TrimSpace(data)))
		if derr != nil || len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("ledger: key file %s: want %d hex-encoded seed bytes", path, ed25519.SeedSize)
		}
		return ed25519.NewKeyFromSeed(seed), nil
	}
	if !os.IsNotExist(err) {
		return nil, err
	}
	_, key, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key.Seed())+"\n"), 0o600); err != nil {
		return nil, fmt.Errorf("ledger: persist key: %w", err)
	}
	return key, nil
}
