package ledger

import (
	"crypto/subtle"
	"fmt"
)

// ProofStep is one level of an audit path: the sibling hash and which
// side of the pair it sits on.
type ProofStep struct {
	Sibling string `json:"sibling"` // hex
	Left    bool   `json:"left"`    // sibling is the left child
}

// Proof is the inclusion proof served at GET /v1/audit/proof?seq=N:
// everything a verifier holding nothing but this document needs to check
// that the event is committed under the signed chain root.
type Proof struct {
	Seq      uint64 `json:"seq"`
	Event    Event  `json:"event"`
	LeafHash string `json:"leafHash"`
	// Index is the event's position within its batch
	// (Seq - Checkpoint.FirstSeq).
	Index int `json:"index"`
	// Path folds LeafHash up to Checkpoint.BatchRoot.
	Path []ProofStep `json:"path"`
	// Checkpoint is the sealed batch's signed chain position.
	Checkpoint Checkpoint `json:"checkpoint"`
}

// Verify checks the proof end to end: the event re-hashes to LeafHash,
// the audit path folds to the batch root, the batch root chains to the
// signed chain root, and the signature verifies. Any single-byte
// mutation of the event, path, roots, or signature fails.
func (p *Proof) Verify() error {
	if p.Event.Seq != p.Seq {
		return fmt.Errorf("ledger: proof seq %d does not match event seq %d", p.Seq, p.Event.Seq)
	}
	if uint64(p.Index) != p.Seq-p.Checkpoint.FirstSeq || p.Index < 0 || p.Index >= p.Checkpoint.Count {
		return fmt.Errorf("ledger: proof index %d inconsistent with batch range [%d,%d)",
			p.Index, p.Checkpoint.FirstSeq, p.Checkpoint.FirstSeq+uint64(p.Checkpoint.Count))
	}
	leaf := p.Event.LeafHash()
	claimed, err := parseHash(p.LeafHash)
	if err != nil {
		return fmt.Errorf("ledger: bad leaf hash: %w", err)
	}
	if subtle.ConstantTimeCompare(leaf[:], claimed[:]) != 1 {
		return fmt.Errorf("ledger: event seq %d does not hash to the proof leaf (event mutated)", p.Seq)
	}
	root, err := foldPath(leaf, p.Path)
	if err != nil {
		return fmt.Errorf("ledger: bad audit path: %w", err)
	}
	want, err := parseHash(p.Checkpoint.BatchRoot)
	if err != nil {
		return fmt.Errorf("ledger: bad batch root: %w", err)
	}
	if subtle.ConstantTimeCompare(root[:], want[:]) != 1 {
		return fmt.Errorf("ledger: audit path folds to %s, batch root is %s (proof mutated)",
			rootPrefix(hexHash(root)), rootPrefix(p.Checkpoint.BatchRoot))
	}
	return p.Checkpoint.Verify()
}
