// Package ledger is the tamper-evident commitment layer of the privacy
// observatory: an append-only hash chain over audit events (policy-change
// audits, sampled request verdicts, breaches, motion snapshot swaps) with
// time/size-bounded Merkle batching.
//
// The observatory (internal/audit) measures the achieved guarantee on
// live traffic; this package makes that evidence non-repudiable. An
// operator who silently drops a breach record — the classic audit-log
// attack — is caught, because every event is committed:
//
//   - Append assigns each event a sequence number and hashes it into the
//     pending batch (one SHA-256, cheap enough for the serving path).
//   - A flush — when the batch fills (MaxBatch) or ages out
//     (FlushInterval) — seals the batch into a Merkle tree whose root is
//     chained onto the previous sealed root and signed (Ed25519),
//     producing a Checkpoint.
//   - Checkpoints and their events land in a pluggable Anchor: an
//     in-memory mock for tests, or a file-backed append-only log with
//     crash-safe recovery (anchor.go) that an offline verifier
//     (`anoncli verify-ledger`) replays independently of the server.
//   - Prove builds an inclusion proof for any retained event: leaf,
//     audit path, batch root, and chain position, verifiable by anyone
//     holding the latest signed root (GET /v1/audit/root).
//
// Observability is first-class: ledger_* metric families (events
// appended, batches sealed, seal latency, queue depth, anchor fsync
// time), ledger.append/seal/prove obs spans, and structured slog lines
// carrying batch seq + root prefix.
package ledger

import (
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"policyanon/internal/metrics"
	"policyanon/internal/obs"
)

// Kind is the event taxonomy: which part of the observatory produced an
// event. The set is open (the chain commits any string), but these are
// the kinds the serving stack emits.
type Kind string

const (
	// KindPolicyAudit is a full-policy audit outcome (snapshot install,
	// move replay, or motion maintenance publishing a new assignment).
	KindPolicyAudit Kind = "policy_audit"
	// KindRequestVerdict is one sampled request-path audit verdict.
	KindRequestVerdict Kind = "request_verdict"
	// KindBreach is an observed anonymity breach (achieved-k < k).
	KindBreach Kind = "breach"
	// KindSnapshotSwap is a motion-pipeline snapshot swap adoption.
	KindSnapshotSwap Kind = "snapshot_swap"
)

// Event is one committed audit record. Seq and TimeMs are assigned by
// Append; Detail carries the kind-specific payload as compact JSON.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeMs int64  `json:"timeMs"`
	Kind   Kind   `json:"kind"`
	Engine string `json:"engine,omitempty"`
	RID    string `json:"rid,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// canonical returns the deterministic byte encoding the leaf hash
// commits to: fixed-width big-endian integers followed by
// length-prefixed strings in declaration order. JSON is deliberately not
// the hashed form — whitespace or key-order drift must not change the
// chain.
func (e *Event) canonical() []byte {
	buf := make([]byte, 0, 64+len(e.Kind)+len(e.Engine)+len(e.RID)+len(e.Detail))
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.TimeMs))
	for _, s := range []string{string(e.Kind), e.Engine, e.RID, e.Detail} {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// LeafHash returns the event's Merkle leaf hash: H(0x00 || canonical).
func (e *Event) LeafHash() [32]byte {
	h := sha256.New()
	h.Write([]byte{domainLeaf})
	h.Write(e.canonical())
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Checkpoint is one sealed batch's commitment: the batch's Merkle root
// chained onto the previous sealed root and signed. Hashes and keys are
// lowercase hex on the wire.
type Checkpoint struct {
	// BatchSeq numbers sealed batches from 1.
	BatchSeq uint64 `json:"batchSeq"`
	// FirstSeq and Count delimit the event sequence range
	// [FirstSeq, FirstSeq+Count) committed by this batch.
	FirstSeq uint64 `json:"firstSeq"`
	Count    int    `json:"count"`
	// SealedMs is the wall-clock seal time (Unix milliseconds).
	SealedMs int64 `json:"sealedMs"`
	// BatchRoot is the Merkle root over this batch's event leaves.
	BatchRoot string `json:"batchRoot"`
	// PrevChainRoot is the previous checkpoint's ChainRoot (all zeros for
	// the genesis batch); ChainRoot = H(0x02 || prev || batchRoot ||
	// batchSeq || firstSeq || count), so one root commits the whole
	// history.
	PrevChainRoot string `json:"prevChainRoot"`
	ChainRoot     string `json:"chainRoot"`
	// PublicKey and Signature authenticate the checkpoint: Signature is
	// Ed25519 over chainRoot || sealedMs under PublicKey.
	PublicKey string `json:"publicKey"`
	Signature string `json:"signature"`
}

// chainHash computes the chain root binding a batch root to its
// predecessor and its position.
func chainHash(prev, batchRoot [32]byte, batchSeq, firstSeq uint64, count int) [32]byte {
	h := sha256.New()
	h.Write([]byte{domainChain})
	h.Write(prev[:])
	h.Write(batchRoot[:])
	var be [8]byte
	binary.BigEndian.PutUint64(be[:], batchSeq)
	h.Write(be[:])
	binary.BigEndian.PutUint64(be[:], firstSeq)
	h.Write(be[:])
	binary.BigEndian.PutUint64(be[:], uint64(count))
	h.Write(be[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// signedPayload is the byte string the checkpoint signature covers.
func signedPayload(chainRoot [32]byte, sealedMs int64) []byte {
	buf := make([]byte, 0, 40)
	buf = append(buf, chainRoot[:]...)
	return binary.BigEndian.AppendUint64(buf, uint64(sealedMs))
}

// Verify checks the checkpoint's internal consistency: the chain hash
// recomputed from its fields must match ChainRoot, and the signature
// must verify under PublicKey. It does not check linkage to a
// predecessor — that is VerifyChain / the anchor replay's job.
func (c *Checkpoint) Verify() error {
	prev, err := parseHash(c.PrevChainRoot)
	if err != nil {
		return fmt.Errorf("ledger: checkpoint %d: bad prevChainRoot: %w", c.BatchSeq, err)
	}
	root, err := parseHash(c.BatchRoot)
	if err != nil {
		return fmt.Errorf("ledger: checkpoint %d: bad batchRoot: %w", c.BatchSeq, err)
	}
	want := chainHash(prev, root, c.BatchSeq, c.FirstSeq, c.Count)
	got, err := parseHash(c.ChainRoot)
	if err != nil {
		return fmt.Errorf("ledger: checkpoint %d: bad chainRoot: %w", c.BatchSeq, err)
	}
	if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
		return fmt.Errorf("ledger: checkpoint %d: chain root mismatch (chain broken or fields mutated)", c.BatchSeq)
	}
	pub, err := hex.DecodeString(c.PublicKey)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("ledger: checkpoint %d: bad public key", c.BatchSeq)
	}
	sig, err := hex.DecodeString(c.Signature)
	if err != nil || len(sig) != ed25519.SignatureSize {
		return fmt.Errorf("ledger: checkpoint %d: bad signature encoding", c.BatchSeq)
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), signedPayload(got, c.SealedMs), sig) {
		return fmt.Errorf("ledger: checkpoint %d: signature verification failed", c.BatchSeq)
	}
	return nil
}

// SealedBatch is one sealed batch as handed to an Anchor: the checkpoint
// plus the events it commits (the anchor is the replayable record).
type SealedBatch struct {
	Checkpoint Checkpoint `json:"checkpoint"`
	Events     []Event    `json:"events"`
}

// Anchor durably records sealed batches. Implementations must be safe
// for use from the ledger's sealer goroutine; Seal is never called
// concurrently.
type Anchor interface {
	// Seal records one sealed batch. An error fails the ledger's seal —
	// the batch stays pending and is retried on the next flush.
	Seal(b *SealedBatch) error
	// Last returns the most recently anchored checkpoint, allowing a
	// restarted ledger to resume its chain.
	Last() (Checkpoint, bool)
}

// Default batching parameters.
const (
	DefaultMaxBatch      = 256
	DefaultFlushInterval = 2 * time.Second
	DefaultRetain        = 64
)

// Options configures a Ledger.
type Options struct {
	// MaxBatch seals a batch as soon as it holds this many events
	// (DefaultMaxBatch when <= 0).
	MaxBatch int
	// FlushInterval bounds how long an appended event stays unsealed
	// (DefaultFlushInterval when 0; negative disables the timer — tests
	// and benchmarks then control sealing via Seal).
	FlushInterval time.Duration
	// Retain is how many sealed batches are kept in memory for Prove
	// (DefaultRetain when <= 0). Evicted batches remain in the anchor
	// and are still verifiable offline.
	Retain int
	// Key signs checkpoints; nil generates an ephemeral key. Persist the
	// key (see LoadOrCreateKey) for chains that must survive restarts.
	Key ed25519.PrivateKey
	// Registry receives the ledger_* metric families (nil for none).
	Registry *metrics.Registry
	// Logger receives structured seal/recovery records (nil for none).
	Logger *slog.Logger
	// BaseContext is the context for timer-driven seals (obs tracer
	// threading); context.Background() when nil.
	BaseContext context.Context
}

// Sentinel errors of Prove.
var (
	// ErrPending means the event is appended but not yet sealed; retry
	// after the next flush (or call Seal).
	ErrPending = errors.New("ledger: event not yet sealed")
	// ErrEvicted means the batch is sealed but no longer retained in
	// memory; the anchor still holds it for offline verification.
	ErrEvicted = errors.New("ledger: batch evicted from proof retention")
	// ErrUnknownSeq means no such event was ever appended.
	ErrUnknownSeq = errors.New("ledger: unknown event sequence")
)

// sealedBatch is the in-memory form retained for proof serving.
type sealedBatch struct {
	cp     Checkpoint
	events []Event
	levels [][][32]byte // full Merkle tree for path extraction
}

// Stats is a point-in-time view of the ledger's accounting.
type Stats struct {
	Events    uint64 `json:"events"`  // appended (sealed + pending)
	Sealed    uint64 `json:"sealed"`  // events committed in sealed batches
	Pending   int    `json:"pending"` // events awaiting the next seal
	Batches   uint64 `json:"batches"`
	ChainRoot string `json:"chainRoot,omitempty"` // latest sealed root
	PublicKey string `json:"publicKey"`
}

// Ledger is the append-only Merkle-batched hash chain. Create with New;
// all methods are safe for concurrent use.
type Ledger struct {
	opts   Options
	anchor Anchor
	key    ed25519.PrivateKey
	pub    ed25519.PublicKey
	reg    *metrics.Registry
	logger *slog.Logger
	base   context.Context

	// mu protects the pending batch and sequence counter only, so the
	// serving-path Append never waits behind a seal's anchor fsync.
	mu       sync.Mutex
	pending  []Event
	pendingH [][32]byte
	nextSeq  uint64

	// sealMu serializes seals and protects the chain state.
	sealMu    sync.Mutex
	batchSeq  uint64
	chainRoot [32]byte
	lastCp    Checkpoint
	hasCp     bool
	sealed    []*sealedBatch // retained, ascending FirstSeq

	kick   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New returns a ledger writing sealed batches into anchor. When the
// anchor already holds checkpoints (a restarted file anchor), the chain
// resumes after its last one: sequence numbers continue and the new
// chain roots link onto the recovered root.
func New(anchor Anchor, opts Options) (*Ledger, error) {
	if anchor == nil {
		return nil, fmt.Errorf("ledger: nil anchor")
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.Retain <= 0 {
		opts.Retain = DefaultRetain
	}
	key := opts.Key
	if key == nil {
		var err error
		_, key, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("ledger: key generation: %w", err)
		}
	}
	if len(key) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("ledger: key has %d bytes, want %d", len(key), ed25519.PrivateKeySize)
	}
	base := opts.BaseContext
	if base == nil {
		base = context.Background()
	}
	l := &Ledger{
		opts:    opts,
		anchor:  anchor,
		key:     key,
		pub:     key.Public().(ed25519.PublicKey),
		reg:     opts.Registry,
		logger:  opts.Logger,
		base:    base,
		nextSeq: 1,
		kick:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	if cp, ok := anchor.Last(); ok {
		root, err := parseHash(cp.ChainRoot)
		if err != nil {
			return nil, fmt.Errorf("ledger: recovered checkpoint has bad chain root: %w", err)
		}
		l.batchSeq = cp.BatchSeq
		l.chainRoot = root
		l.lastCp = cp
		l.hasCp = true
		l.nextSeq = cp.FirstSeq + uint64(cp.Count)
		if l.logger != nil {
			l.logger.Info("ledger: chain resumed",
				"batchSeq", cp.BatchSeq, "nextSeq", l.nextSeq, "root", rootPrefix(cp.ChainRoot))
		}
	}
	l.wg.Add(1)
	go l.sealLoop()
	return l, nil
}

// PublicKey returns the checkpoint-signing public key.
func (l *Ledger) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), l.pub...)
}

// Append commits one event to the pending batch: it assigns the next
// sequence number, stamps the wall clock, and hashes the event. The
// batch is sealed asynchronously by the sealer goroutine (immediately
// when MaxBatch is reached, otherwise within FlushInterval), so the
// caller never pays the Merkle build or the anchor fsync.
func (l *Ledger) Append(ctx context.Context, kind Kind, engine, rid, detail string) (uint64, error) {
	ctx, sp := obs.Start(ctx, "ledger.append")
	defer sp.End()
	_ = ctx
	e := Event{TimeMs: time.Now().UnixMilli(), Kind: kind, Engine: engine, RID: rid, Detail: detail}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, fmt.Errorf("ledger: closed")
	}
	e.Seq = l.nextSeq
	l.nextSeq++
	l.pending = append(l.pending, e)
	l.pendingH = append(l.pendingH, e.LeafHash())
	depth := len(l.pending)
	l.mu.Unlock()

	if l.reg != nil {
		l.reg.Counter("ledger_events").Inc()
		l.reg.Counter("ledger_events:" + string(kind)).Inc()
		l.reg.Gauge("ledger_queue_depth").Set(int64(depth))
	}
	sp.SetInt("seq", int64(e.Seq))
	sp.SetAttr("kind", string(kind))
	if depth >= l.opts.MaxBatch {
		select {
		case l.kick <- struct{}{}:
		default:
		}
	}
	return e.Seq, nil
}

// sealLoop is the background sealer: it flushes the pending batch when
// kicked (batch full, Close) or when the flush interval elapses.
func (l *Ledger) sealLoop() {
	defer l.wg.Done()
	var tick <-chan time.Time
	if l.opts.FlushInterval > 0 {
		t := time.NewTicker(l.opts.FlushInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
		case <-tick:
		}
		if _, err := l.Seal(l.base); err != nil && l.logger != nil {
			l.logger.Error("ledger: seal failed", "err", err)
		}
	}
}

// Seal flushes the pending batch into a signed checkpoint now. It is a
// no-op returning the latest checkpoint (nil before the first seal)
// when nothing is pending. Benchmarks and tests call it directly; the
// serving stack relies on the background sealer.
func (l *Ledger) Seal(ctx context.Context) (*Checkpoint, error) {
	l.sealMu.Lock()
	defer l.sealMu.Unlock()

	l.mu.Lock()
	events := l.pending
	leaves := l.pendingH
	l.pending = nil
	l.pendingH = nil
	l.mu.Unlock()

	if len(events) == 0 {
		if l.hasCp {
			cp := l.lastCp
			return &cp, nil
		}
		return nil, nil
	}

	ctx, sp := obs.Start(ctx, "ledger.seal")
	defer sp.End()
	start := time.Now()

	levels := buildLevels(leaves)
	root := levels[len(levels)-1][0]
	batchSeq := l.batchSeq + 1
	firstSeq := events[0].Seq
	chain := chainHash(l.chainRoot, root, batchSeq, firstSeq, len(events))
	sealedMs := start.UnixMilli()
	cp := Checkpoint{
		BatchSeq:      batchSeq,
		FirstSeq:      firstSeq,
		Count:         len(events),
		SealedMs:      sealedMs,
		BatchRoot:     hexHash(root),
		PrevChainRoot: hexHash(l.chainRoot),
		ChainRoot:     hexHash(chain),
		PublicKey:     hex.EncodeToString(l.pub),
		Signature:     hex.EncodeToString(ed25519.Sign(l.key, signedPayload(chain, sealedMs))),
	}
	if err := l.anchor.Seal(&SealedBatch{Checkpoint: cp, Events: events}); err != nil {
		// Put the batch back so no accepted event is lost; newer appends
		// stay behind it in order.
		l.mu.Lock()
		l.pending = append(events, l.pending...)
		l.pendingH = append(leaves, l.pendingH...)
		l.mu.Unlock()
		return nil, fmt.Errorf("ledger: anchor seal: %w", err)
	}
	l.batchSeq = batchSeq
	l.chainRoot = chain
	l.lastCp = cp
	l.hasCp = true
	l.sealed = append(l.sealed, &sealedBatch{cp: cp, events: events, levels: levels})
	if over := len(l.sealed) - l.opts.Retain; over > 0 {
		l.sealed = append([]*sealedBatch(nil), l.sealed[over:]...)
	}
	elapsed := time.Since(start)
	if l.reg != nil {
		l.reg.Counter("ledger_batches").Inc()
		l.reg.Histogram("ledger_seal").Observe(elapsed)
		l.mu.Lock()
		depth := len(l.pending)
		l.mu.Unlock()
		l.reg.Gauge("ledger_queue_depth").Set(int64(depth))
	}
	sp.SetInt("batchSeq", int64(batchSeq))
	sp.SetInt("events", int64(len(events)))
	sp.SetAttr("root", rootPrefix(cp.ChainRoot))
	if l.logger != nil {
		l.logger.LogAttrs(ctx, slog.LevelDebug, "ledger: batch sealed",
			slog.Uint64("batchSeq", batchSeq),
			slog.Uint64("firstSeq", firstSeq),
			slog.Int("events", len(events)),
			slog.String("root", rootPrefix(cp.ChainRoot)),
			slog.Float64("ms", float64(elapsed.Microseconds())/1000),
		)
	}
	return &cp, nil
}

// Latest returns the most recent sealed checkpoint.
func (l *Ledger) Latest() (Checkpoint, bool) {
	l.sealMu.Lock()
	defer l.sealMu.Unlock()
	return l.lastCp, l.hasCp
}

// Stats returns the ledger's accounting.
func (l *Ledger) Stats() Stats {
	l.sealMu.Lock()
	batches, hasCp, cp := l.batchSeq, l.hasCp, l.lastCp
	l.sealMu.Unlock()
	l.mu.Lock()
	pending := len(l.pending)
	next := l.nextSeq
	l.mu.Unlock()
	st := Stats{
		Events:    next - 1,
		Pending:   pending,
		Batches:   batches,
		PublicKey: hex.EncodeToString(l.pub),
	}
	st.Sealed = st.Events - uint64(pending)
	if hasCp {
		st.ChainRoot = cp.ChainRoot
	}
	return st
}

// Prove builds the inclusion proof for the event with sequence seq:
// the event, its audit path to the batch root, and the batch's signed
// chain position. Returns ErrPending for appended-but-unsealed events,
// ErrEvicted for batches aged out of retention (the anchor still holds
// them), and ErrUnknownSeq for never-assigned sequence numbers.
func (l *Ledger) Prove(ctx context.Context, seq uint64) (*Proof, error) {
	_, sp := obs.Start(ctx, "ledger.prove")
	defer sp.End()
	sp.SetInt("seq", int64(seq))

	l.sealMu.Lock()
	var b *sealedBatch
	for _, sb := range l.sealed {
		if seq >= sb.cp.FirstSeq && seq < sb.cp.FirstSeq+uint64(sb.cp.Count) {
			b = sb
			break
		}
	}
	var sealedThrough uint64
	if l.hasCp {
		sealedThrough = l.lastCp.FirstSeq + uint64(l.lastCp.Count)
	}
	l.sealMu.Unlock()

	if b == nil {
		l.mu.Lock()
		next := l.nextSeq
		l.mu.Unlock()
		switch {
		case seq == 0 || seq >= next:
			return nil, fmt.Errorf("%w: %d", ErrUnknownSeq, seq)
		case seq >= sealedThrough:
			return nil, fmt.Errorf("%w: seq %d", ErrPending, seq)
		default:
			return nil, fmt.Errorf("%w: seq %d", ErrEvicted, seq)
		}
	}
	idx := int(seq - b.cp.FirstSeq)
	p := &Proof{
		Seq:        seq,
		Event:      b.events[idx],
		LeafHash:   hexHash(b.levels[0][idx]),
		Index:      idx,
		Path:       auditPath(b.levels, idx),
		Checkpoint: b.cp,
	}
	sp.SetInt("batchSeq", int64(b.cp.BatchSeq))
	return p, nil
}

// Close seals any pending events and stops the background sealer. The
// ledger rejects appends afterwards. ctx bounds the final seal only
// insofar as the anchor respects it; the Merkle build itself is fast.
func (l *Ledger) Close(ctx context.Context) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.wg.Wait()
	_, err := l.Seal(ctx)
	return err
}

// hexHash renders a hash as lowercase hex.
func hexHash(h [32]byte) string { return hex.EncodeToString(h[:]) }

// parseHash decodes a 32-byte lowercase-hex hash.
func parseHash(s string) ([32]byte, error) {
	var out [32]byte
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, err
	}
	if len(b) != 32 {
		return out, fmt.Errorf("hash has %d bytes, want 32", len(b))
	}
	copy(out[:], b)
	return out, nil
}

// rootPrefix abbreviates a chain root for log lines (full roots are in
// the anchor; logs only need enough to correlate).
func rootPrefix(hexRoot string) string {
	if len(hexRoot) > 12 {
		return hexRoot[:12]
	}
	return hexRoot
}
