package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// PhaseStat aggregates every finished span of one name.
type PhaseStat struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"totalNs"`
	Min   time.Duration `json:"minNs"`
	Max   time.Duration `json:"maxNs"`
	Mean  time.Duration `json:"meanNs"`
}

// PhaseSummary returns per-phase timing statistics, heaviest total first.
// It is maintained independently of span retention, so it works on
// tracers running with KeepSpans(false).
func (t *Tracer) PhaseSummary() []PhaseStat {
	t.mu.Lock()
	stats := make([]PhaseStat, 0, len(t.agg))
	for name, a := range t.agg {
		stats = append(stats, PhaseStat{
			Name: name, Count: a.count, Total: a.total,
			Min: a.min, Max: a.max, Mean: a.total / time.Duration(a.count),
		})
	}
	t.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Total != stats[j].Total {
			return stats[i].Total > stats[j].Total
		}
		return stats[i].Name < stats[j].Name
	})
	return stats
}

// WritePhaseTable renders the phase summary as an aligned text table, the
// in-process per-phase breakdown the Section VI evaluation tables are
// built from.
func (t *Tracer) WritePhaseTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tcount\ttotal\tmean\tmin\tmax")
	for _, s := range t.PhaseSummary() {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\t%v\n",
			s.Name, s.Count,
			s.Total.Round(time.Microsecond), s.Mean.Round(time.Microsecond),
			s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
	return tw.Flush()
}
