package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"policyanon/internal/metrics"
)

func TestDisabledPathNoAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "bulkdp.build")
		sp.SetAttr("k", "50")
		sp.SetInt("users", 12345)
		sp.End()
		if c2 != ctx {
			t.Fatal("disabled Start must return the input context")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		_, sp := StartLane(ctx, "parallel.worker")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled StartLane path allocates: %v allocs/op", allocs)
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	ctx := WithTracer(context.Background(), nil)
	if tr := TracerFrom(ctx); tr != nil {
		t.Fatalf("nil tracer installed, got %v", tr)
	}
	var sp *Span
	sp.SetAttr("a", "b") // must not panic
	sp.SetInt("n", 1)
	sp.End()
}

func TestCurrentSpan(t *testing.T) {
	if Current(context.Background()) != nil {
		t.Fatal("Current on a bare context must be nil")
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	// The WithTracer placeholder is not a real span.
	if Current(ctx) != nil {
		t.Fatal("Current before any Start must be nil")
	}
	sctx, sp := Start(ctx, "outer")
	if Current(sctx) != sp {
		t.Fatal("Current did not return the started span")
	}
	ictx, inner := Start(sctx, "inner")
	if Current(ictx) != inner || Current(sctx) != sp {
		t.Fatal("Current does not track nesting")
	}
	Current(ictx).SetAttr("via", "current")
	inner.End()
	sp.End()
	var found bool
	for _, rec := range tr.Spans() {
		if rec.Name != "inner" {
			continue
		}
		for _, a := range rec.Attrs {
			if a.Key == "via" && a.Value == "current" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("attribute set through Current lost")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom did not recover the installed tracer")
	}
	ctx1, root := Start(ctx, "outer")
	root.SetInt("users", 400)
	ctx2, mid := Start(ctx1, "middle")
	_, leaf := Start(ctx2, "inner")
	leaf.End()
	mid.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["middle"].Parent != byName["outer"].ID {
		t.Errorf("middle's parent = %d, want outer's id %d", byName["middle"].Parent, byName["outer"].ID)
	}
	if byName["inner"].Parent != byName["middle"].ID {
		t.Errorf("inner's parent = %d, want middle's id %d", byName["inner"].Parent, byName["middle"].ID)
	}
	if byName["outer"].Parent != 0 {
		t.Errorf("outer's parent = %d, want 0 (root)", byName["outer"].Parent)
	}
	// All three share the root span's lane.
	if byName["inner"].Lane != byName["outer"].Lane || byName["middle"].Lane != byName["outer"].Lane {
		t.Error("nested spans should share their root's lane")
	}
	if len(byName["outer"].Attrs) != 1 || byName["outer"].Attrs[0] != (Attr{Key: "users", Value: "400"}) {
		t.Errorf("outer attrs = %v", byName["outer"].Attrs)
	}
}

func TestStartLaneSeparatesRows(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "parallel.build")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartLane(ctx, "parallel.worker")
			time.Sleep(time.Millisecond)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	lanes := map[uint64]bool{}
	for _, s := range tr.Spans() {
		if s.Name == "parallel.worker" {
			if s.Parent == 0 {
				t.Error("worker span lost its parent")
			}
			lanes[s.Lane] = true
		}
	}
	if len(lanes) != 4 {
		t.Fatalf("want 4 distinct worker lanes, got %d", len(lanes))
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx, root := Start(ctx, "bulkdp.build")
	_, child := Start(ctx, "bulkdp.combine")
	child.SetInt("nodes", 7)
	time.Sleep(200 * time.Microsecond)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  uint64            `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != 2 {
		t.Fatalf("want 2 events, got %d", len(decoded.TraceEvents))
	}
	var build, combine int = -1, -1
	for i, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d phase = %q, want X", i, ev.Ph)
		}
		switch ev.Name {
		case "bulkdp.build":
			build = i
		case "bulkdp.combine":
			combine = i
		}
	}
	if build < 0 || combine < 0 {
		t.Fatalf("missing events: %+v", decoded.TraceEvents)
	}
	b, c := decoded.TraceEvents[build], decoded.TraceEvents[combine]
	// The child must be contained within the parent on the same row.
	if c.TS < b.TS || c.TS+c.Dur > b.TS+b.Dur+1 { // +1us slack for rounding
		t.Errorf("child [%v,%v] not inside parent [%v,%v]", c.TS, c.TS+c.Dur, b.TS, b.TS+b.Dur)
	}
	if c.TID != b.TID {
		t.Error("nested spans should share a trace row")
	}
	if c.Args["nodes"] != "7" {
		t.Errorf("child args = %v", c.Args)
	}
}

func TestPhaseSummaryAndTable(t *testing.T) {
	tr := NewTracer()
	tr.KeepSpans(false) // aggregates must survive without span retention
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "csp.serve")
		time.Sleep(100 * time.Microsecond)
		sp.End()
	}
	_, sp := Start(ctx, "bulkdp.update")
	sp.End()

	if got := len(tr.Spans()); got != 0 {
		t.Fatalf("KeepSpans(false) retained %d spans", got)
	}
	stats := tr.PhaseSummary()
	if len(stats) != 2 {
		t.Fatalf("want 2 phases, got %+v", stats)
	}
	byName := map[string]PhaseStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	serve := byName["csp.serve"]
	if serve.Count != 3 {
		t.Errorf("csp.serve count = %d, want 3", serve.Count)
	}
	if serve.Min > serve.Mean || serve.Mean > serve.Max || serve.Total < serve.Max {
		t.Errorf("inconsistent stats: %+v", serve)
	}
	var buf bytes.Buffer
	if err := tr.WritePhaseTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "csp.serve") || !strings.Contains(out, "bulkdp.update") {
		t.Errorf("phase table missing rows:\n%s", out)
	}
}

func TestRegistryBridge(t *testing.T) {
	tr := NewTracer()
	reg := metrics.NewRegistry()
	tr.SetRegistry(reg)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "bulkdp.build")
		sp.End()
	}
	snap := reg.Snapshot()
	if got := snap.Counters["phase_spans:bulkdp.build"]; got != 5 {
		t.Errorf("phase_spans counter = %d, want 5", got)
	}
	h, ok := snap.Histograms["phase:bulkdp.build"]
	if !ok || h.Count != 5 {
		t.Errorf("phase histogram = %+v (ok=%v), want count 5", h, ok)
	}
}

func TestSpanLimitDrops(t *testing.T) {
	tr := NewTracer()
	tr.SetLimit(2)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "x")
		sp.End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	if got := tr.PhaseSummary()[0].Count; got != 5 {
		t.Fatalf("aggregate count = %d, want 5 (drops must not affect aggregates)", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 || len(tr.PhaseSummary()) != 0 {
		t.Fatal("Reset did not clear state")
	}
}
