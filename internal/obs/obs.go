// Package obs is the zero-dependency tracing layer of the anonymization
// stack: hierarchical wall-clock spans carried through context.Context,
// aggregated into per-phase timing statistics and exportable as Chrome
// trace_event JSON (loadable in chrome://tracing or Perfetto).
//
// The stable span taxonomy (see docs/OBSERVABILITY.md) names the phases of
// the paper's Algorithm 1 / Section V pipeline — tree.build,
// bulkdp.build ⊃ bulkdp.combine, bulkdp.extract, bulkdp.update,
// parallel.worker, cluster.shard, csp.serve — so that traces stay
// comparable across benchmark runs and PRs.
//
// Tracing is opt-in per call tree: a Tracer is installed with WithTracer
// and picked up by Start. When no tracer is installed, Start returns a nil
// *Span whose methods are no-ops; the disabled path performs no
// allocations and no locking, so instrumented hot paths cost nothing in
// production configurations that do not trace.
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"policyanon/internal/metrics"
)

// Attr is one key/value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. A nil *Span is valid and inert: every
// method is a no-op, which is how the disabled-tracing path stays free.
type Span struct {
	tracer *Tracer
	cap    *Capture
	name   string
	id     uint64
	parent uint64
	lane   uint64
	start  time.Time
	attrs  []Attr
}

// ID returns the span's tracer-unique identifier (0 for a nil span or
// the placeholder installed by WithTracer). It is what cross-process
// callers propagate as a parent-span reference.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ctxKey carries the current *Span (whose tracer field identifies the
// installed Tracer) through a context chain.
type ctxKey struct{}

// DefaultSpanLimit bounds the number of finished spans a Tracer retains
// for export; beyond it spans still feed the aggregates but are dropped
// from the trace buffer (Dropped reports how many).
const DefaultSpanLimit = 1 << 16

// Tracer collects finished spans and per-phase aggregates. It is safe for
// concurrent use by multiple goroutines.
type Tracer struct {
	nextID   atomic.Uint64
	nextLane atomic.Uint64

	mu      sync.Mutex
	epoch   time.Time
	spans   []SpanRecord
	dropped int64
	limit   int
	keep    bool
	agg     map[string]*phaseAgg
	reg     *metrics.Registry
}

type phaseAgg struct {
	count      int64
	total, min time.Duration
	max        time.Duration

	// hist and cnt cache the registry series for this phase so the
	// per-span-finish hot path neither concatenates "phase:"+name nor
	// re-resolves the registry maps. Invalidated by SetRegistry.
	hist *metrics.Histogram
	cnt  *metrics.Counter
}

// NewTracer returns a tracer that retains up to DefaultSpanLimit spans.
func NewTracer() *Tracer {
	return &Tracer{
		epoch: time.Now(),
		limit: DefaultSpanLimit,
		keep:  true,
		agg:   make(map[string]*phaseAgg),
	}
}

// SetRegistry mirrors every finished span into reg: a latency observation
// on histogram "phase:<name>" and an increment of counter
// "phase_spans:<name>". This is how the server turns spans into
// Prometheus series without retaining trace buffers.
func (t *Tracer) SetRegistry(reg *metrics.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg = reg
	for _, a := range t.agg {
		a.hist, a.cnt = nil, nil
	}
}

// KeepSpans toggles span retention for trace export. With keep=false only
// the per-phase aggregates (and the registry mirror) are maintained —
// the right setting for long-running servers.
func (t *Tracer) KeepSpans(keep bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keep = keep
}

// SetLimit caps the retained-span buffer (n < 1 resets to the default).
func (t *Tracer) SetLimit(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 1 {
		n = DefaultSpanLimit
	}
	t.limit = n
}

// Dropped reports spans discarded after the buffer limit was reached.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WithTracer installs tr as the tracer for the returned context's call
// tree. A nil tr returns ctx unchanged (tracing stays disabled).
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{tracer: tr})
}

// TracerFrom returns the tracer installed in ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return sp.tracer
	}
	return nil
}

// Current returns the span ctx is inside of, or nil when tracing is
// disabled or no span has been started yet (the placeholder installed by
// WithTracer is not a real span). It lets cross-cutting layers — e.g. the
// audit sampler attaching breach attributes — annotate the enclosing span
// without threading it explicitly. The returned span must only be
// annotated from the goroutine that started it, and only before End.
func Current(ctx context.Context) *Span {
	sp, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || sp.tracer == nil || sp.id == 0 {
		return nil
	}
	return sp
}

// Start begins a span named name under the span current in ctx and
// returns a derived context carrying the new span. When ctx carries no
// tracer it returns ctx unchanged and a nil span, without allocating.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || parent.tracer == nil {
		return ctx, nil
	}
	return startUnder(ctx, parent, name, false)
}

// StartLane is Start on a fresh display lane: the span (and its children)
// render on their own timeline row in the Chrome trace instead of
// stacking under the parent's row. Use it for spans that run concurrently
// with their siblings — per-jurisdiction workers, per-shard RPCs — so
// overlapping work stays readable; the parent/child relation is preserved
// in the span records either way.
func StartLane(ctx context.Context, name string) (context.Context, *Span) {
	parent, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || parent.tracer == nil {
		return ctx, nil
	}
	return startUnder(ctx, parent, name, true)
}

func startUnder(ctx context.Context, parent *Span, name string, newLane bool) (context.Context, *Span) {
	tr := parent.tracer
	lane := parent.lane
	if newLane || parent.id == 0 {
		lane = tr.nextLane.Add(1)
	}
	sp := &Span{
		tracer: tr,
		cap:    parent.cap,
		name:   name,
		id:     tr.nextID.Add(1),
		parent: parent.id,
		lane:   lane,
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// SetAttr annotates the span. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		// Spans that get one attr usually get a few; skip the 1→2→4
		// append-growth allocs on the serving hot path.
		s.attrs = make([]Attr, 0, 4)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt annotates the span with an integer value. No-op on a nil span.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// End finishes the span, recording its duration into the tracer. No-op on
// a nil span. End must be called at most once, from the goroutine that
// started the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.finish(s, time.Since(s.start))
}

// SpanRecord is one finished span as retained by the tracer. Start is the
// offset from the tracer's epoch (its creation time).
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent"` // 0 = root
	Lane   uint64        `json:"lane"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"startNs"`
	Dur    time.Duration `json:"durNs"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

func (t *Tracer) finish(s *Span, dur time.Duration) {
	if s.cap != nil {
		s.cap.add(SpanRecord{
			ID: s.id, Parent: s.parent, Lane: s.lane, Name: s.name,
			Start: s.start.Sub(s.cap.epoch), Dur: dur, Attrs: s.attrs,
		})
	}
	t.mu.Lock()
	a, ok := t.agg[s.name]
	if !ok {
		a = &phaseAgg{min: dur}
		t.agg[s.name] = a
	}
	a.count++
	a.total += dur
	if dur < a.min {
		a.min = dur
	}
	if dur > a.max {
		a.max = dur
	}
	if t.keep {
		if len(t.spans) < t.limit {
			t.spans = append(t.spans, SpanRecord{
				ID: s.id, Parent: s.parent, Lane: s.lane, Name: s.name,
				Start: s.start.Sub(t.epoch), Dur: dur, Attrs: s.attrs,
			})
		} else {
			t.dropped++
		}
	}
	var hist *metrics.Histogram
	var cnt *metrics.Counter
	if t.reg != nil {
		if a.hist == nil {
			a.hist = t.reg.Histogram("phase:" + s.name)
			a.cnt = t.reg.Counter("phase_spans:" + s.name)
		}
		hist, cnt = a.hist, a.cnt
	}
	t.mu.Unlock()
	if hist != nil {
		hist.Observe(dur)
		cnt.Inc()
	}
}

// Spans returns a copy of the retained spans ordered by start time.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Reset discards retained spans and aggregates, starting a new epoch.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch = time.Now()
	t.spans = t.spans[:0]
	t.dropped = 0
	t.agg = make(map[string]*phaseAgg)
}
