package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultCaptureLimit bounds the spans one Capture retains. A serving
// request produces a handful of spans (root, csp.serve, per-item spans
// on batches), so the limit only matters for pathological fan-outs; the
// overflow is counted, not silently lost.
const DefaultCaptureLimit = 4096

// Capture collects the finished spans of one call tree — typically one
// HTTP request or one motion batch — independently of the Tracer's
// global retention setting. It is the unit of tail-based sampling: the
// serving layer opens a Capture on every request, spans accumulate into
// it as they finish, and at request end the capture is either retained
// into the flight recorder (slow, errored, breached, ...) or discarded
// wholesale. Aggregate statistics still flow to the Tracer either way.
//
// A Capture is safe for concurrent use: batch items finish spans from
// worker goroutines.
type Capture struct {
	traceID string
	epoch   time.Time
	limit   int

	// remoteParent is the span ID, in the *caller's* process, that this
	// capture's roots hang under when the trace was propagated across an
	// RPC boundary (X-Trace-ID / X-Parent-Span headers).
	remoteParent uint64

	mu      sync.Mutex
	spans   []SpanRecord
	marks   []string
	dropped int

	// spanBuf backs the first len(spanBuf) entries of spans, so a typical
	// request's span tree (root + csp.serve + an audit or flight span)
	// lives inside the Capture's own allocation; batch fan-outs spill to
	// a heap slice.
	spanBuf [4]SpanRecord
}

// NewCapture returns a capture identified by traceID retaining up to
// limit spans (limit < 1 selects DefaultCaptureLimit). The epoch — the
// zero point of the retained spans' Start offsets — is the call time.
func NewCapture(traceID string, limit int) *Capture {
	if limit < 1 {
		limit = DefaultCaptureLimit
	}
	c := &Capture{traceID: traceID, epoch: time.Now(), limit: limit}
	c.spans = c.spanBuf[:0]
	return c
}

// TraceID returns the capture's identity, minted locally or adopted
// from an upstream caller.
func (c *Capture) TraceID() string {
	if c == nil {
		return ""
	}
	return c.traceID
}

// Epoch returns the capture's time origin.
func (c *Capture) Epoch() time.Time { return c.epoch }

// SetRemoteParent records the caller-side span ID this capture's root
// spans belong under (trace propagation across an RPC hop).
func (c *Capture) SetRemoteParent(id uint64) {
	if c != nil {
		c.remoteParent = id
	}
}

// RemoteParent returns the propagated caller-side parent span ID, or 0.
func (c *Capture) RemoteParent() uint64 {
	if c == nil {
		return 0
	}
	return c.remoteParent
}

func (c *Capture) add(rec SpanRecord) {
	c.mu.Lock()
	if len(c.spans) < c.limit {
		c.spans = append(c.spans, rec)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Mark tags the capture with a retention reason ("breach",
// "fallback", "flight", ...). Marks are deduplicated; cross-cutting
// layers call it through MarkCapture without knowing whether a capture
// is open. The tail-sampling decision reads them at request end.
func (c *Capture) Mark(reason string) {
	if c == nil || reason == "" {
		return
	}
	c.mu.Lock()
	for _, m := range c.marks {
		if m == reason {
			c.mu.Unlock()
			return
		}
	}
	c.marks = append(c.marks, reason)
	c.mu.Unlock()
}

// Marks returns the capture's accumulated retention reasons.
func (c *Capture) Marks() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]string(nil), c.marks...)
	c.mu.Unlock()
	return out
}

// Spans returns a copy of the captured spans in finish order.
func (c *Capture) Spans() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]SpanRecord(nil), c.spans...)
	c.mu.Unlock()
	return out
}

// Dropped reports spans discarded past the capture limit.
func (c *Capture) Dropped() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// WithCapture attaches c to the call tree of the returned context:
// every span started from it (and from contexts derived from it) also
// records into c when it ends. It requires a tracer in ctx — captures
// piggyback on the span machinery — and is a no-op otherwise.
func WithCapture(ctx context.Context, c *Capture) context.Context {
	sp, ok := ctx.Value(ctxKey{}).(*Span)
	if !ok || sp.tracer == nil || c == nil {
		return ctx
	}
	carrier := *sp
	carrier.cap = c
	return context.WithValue(ctx, ctxKey{}, &carrier)
}

// WithTracerCapture installs tr and attaches c in one step — the fused
// form of WithTracer + WithCapture the serving hot path uses: one
// context value and one carrier allocation instead of two of each. A
// nil tr returns ctx unchanged; a nil c degrades to WithTracer.
func WithTracerCapture(ctx context.Context, tr *Tracer, c *Capture) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{tracer: tr, cap: c})
}

// StartRootCaptured fuses WithTracerCapture and Start for the serving
// hot path: install tr, attach c, and open the root span of the call
// tree in a single context value and a single span allocation. The
// returned span is the capture's root (parent 0). A nil tr returns ctx
// unchanged and a nil span.
func StartRootCaptured(ctx context.Context, tr *Tracer, c *Capture, name string) (context.Context, *Span) {
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{
		tracer: tr,
		cap:    c,
		name:   name,
		id:     tr.nextID.Add(1),
		lane:   tr.nextLane.Add(1),
		start:  time.Now(),
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// CaptureFrom returns the capture attached to ctx's call tree, or nil.
func CaptureFrom(ctx context.Context) *Capture {
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok {
		return sp.cap
	}
	return nil
}

// MarkCapture tags ctx's capture with a retention reason, if one is
// open. It is how the audit sampler, the CSP singleflight, and the
// motion maintainer vote a request interesting without depending on the
// serving layer.
func MarkCapture(ctx context.Context, reason string) {
	if sp, ok := ctx.Value(ctxKey{}).(*Span); ok {
		sp.cap.Mark(reason)
	}
}
