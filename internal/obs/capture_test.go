package obs

import (
	"context"
	"sync"
	"testing"
)

func TestCaptureCollectsCallTree(t *testing.T) {
	tr := NewTracer()
	tr.KeepSpans(false) // server configuration: aggregates only
	ctx := WithTracer(context.Background(), tr)
	c := NewCapture("tid-1", 0)
	ctx = WithCapture(ctx, c)
	if got := CaptureFrom(ctx); got != c {
		t.Fatalf("CaptureFrom = %p, want %p", got, c)
	}

	ctx, root := Start(ctx, "http.request")
	cctx, child := Start(ctx, "csp.serve")
	child.SetAttr("cache", "miss")
	MarkCapture(cctx, "flight")
	child.End()
	root.End()

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("capture holds %d spans, want 2", len(spans))
	}
	// Finish order: child first, then root; parentage preserved.
	if spans[0].Name != "csp.serve" || spans[1].Name != "http.request" {
		t.Errorf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent = %d, want root id %d", spans[0].Parent, spans[1].ID)
	}
	if got := c.Marks(); len(got) != 1 || got[0] != "flight" {
		t.Errorf("Marks = %v, want [flight]", got)
	}
	// KeepSpans(false) still means no tracer-side retention.
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("tracer retained %d spans with keep=false", n)
	}
	// Aggregates flow regardless of capture.
	if got := len(tr.PhaseSummary()); got != 2 {
		t.Errorf("PhaseSummary phases = %d, want 2", got)
	}
}

func TestCaptureLimitAndDrops(t *testing.T) {
	tr := NewTracer()
	ctx := WithCapture(WithTracer(context.Background(), tr), nil)
	if CaptureFrom(ctx) != nil {
		t.Fatal("nil capture attached")
	}
	c := NewCapture("tid-2", 3)
	ctx = WithCapture(ctx, c)
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "phase")
		sp.End()
	}
	if len(c.Spans()) != 3 || c.Dropped() != 2 {
		t.Errorf("spans=%d dropped=%d, want 3/2", len(c.Spans()), c.Dropped())
	}
}

func TestCaptureNilSafe(t *testing.T) {
	var c *Capture
	c.Mark("x")
	if c.TraceID() != "" || c.Spans() != nil || c.Marks() != nil || c.Dropped() != 0 || c.RemoteParent() != 0 {
		t.Error("nil capture accessors not inert")
	}
	c.SetRemoteParent(7)
	MarkCapture(context.Background(), "x") // no tracer: no-op
	if got := CaptureFrom(context.Background()); got != nil {
		t.Errorf("CaptureFrom(empty ctx) = %v", got)
	}
}

func TestCaptureMarkDedup(t *testing.T) {
	c := NewCapture("tid-3", 0)
	c.Mark("breach")
	c.Mark("breach")
	c.Mark("slow")
	c.Mark("")
	if got := c.Marks(); len(got) != 2 {
		t.Errorf("Marks = %v, want 2 distinct", got)
	}
}

func TestCaptureRemoteParent(t *testing.T) {
	c := NewCapture("tid-4", 0)
	c.SetRemoteParent(99)
	if c.RemoteParent() != 99 {
		t.Errorf("RemoteParent = %d, want 99", c.RemoteParent())
	}
}

// TestSpanLimitEvictionConcurrent hammers a small retained-span buffer
// from many producers past the limit and asserts the accounting is
// exact: retained + dropped = produced, and the per-phase aggregates
// still count every span including the dropped ones.
func TestSpanLimitEvictionConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 400
		limit     = 64
	)
	tr := NewTracer()
	tr.SetLimit(limit)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				_, sp := Start(ctx, "phase.evict")
				sp.End()
			}
		}()
	}
	wg.Wait()

	total := int64(producers * perProd)
	kept := int64(len(tr.Spans()))
	if kept != limit {
		t.Errorf("retained %d spans, want exactly the limit %d", kept, limit)
	}
	if got := tr.Dropped(); got != total-kept {
		t.Errorf("Dropped = %d, want %d (total %d - kept %d)", got, total-kept, total, kept)
	}
	sum := tr.PhaseSummary()
	if len(sum) != 1 || sum[0].Count != total {
		t.Errorf("aggregate count = %+v, want %d including dropped spans", sum, total)
	}
	// Reset clears the accounting for the next epoch.
	tr.Reset()
	if tr.Dropped() != 0 || len(tr.Spans()) != 0 {
		t.Error("Reset left eviction accounting behind")
	}
}

func TestSpanID(t *testing.T) {
	var nilSpan *Span
	if nilSpan.ID() != 0 {
		t.Error("nil span ID != 0")
	}
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if Current(ctx).ID() != 0 {
		t.Error("placeholder span has nonzero ID")
	}
	sctx, sp := Start(ctx, "a")
	defer sp.End()
	if sp.ID() == 0 || Current(sctx).ID() != sp.ID() {
		t.Error("started span ID not exposed via Current")
	}
}
