package flight

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingRetainEvicts(t *testing.T) {
	r := New(4, 4)
	for i := 0; i < 10; i++ {
		r.Retain(&Trace{TraceID: fmt.Sprintf("t-%d", i)})
	}
	got := r.Traces()
	if len(got) != 4 {
		t.Fatalf("Traces() = %d entries, want 4", len(got))
	}
	// Newest first: t-9, t-8, t-7, t-6.
	for i, tr := range got {
		want := fmt.Sprintf("t-%d", 9-i)
		if tr.TraceID != want {
			t.Errorf("Traces()[%d] = %s, want %s", i, tr.TraceID, want)
		}
	}
	if st := r.Stats(); st.Retained != 10 || st.Capacity != 4 {
		t.Errorf("Stats = %+v, want Retained=10 Capacity=4", st)
	}
}

func TestEventRing(t *testing.T) {
	r := New(2, 3)
	for i := 0; i < 5; i++ {
		r.Emit(&Event{Kind: "breach", Detail: fmt.Sprintf("e%d", i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() = %d, want 3", len(evs))
	}
	if evs[0].Detail != "e4" || evs[2].Detail != "e2" {
		t.Errorf("Events() newest-first order wrong: %v %v", evs[0].Detail, evs[2].Detail)
	}
}

func TestRollingThreshold(t *testing.T) {
	r := New(4, 4)
	// Before warmup and recompute, nothing is slow.
	if r.ObserveLatency(time.Hour) {
		t.Fatal("ObserveLatency slow before threshold established")
	}
	// Feed a uniform baseline well past warmup; the p99 settles at 1ms.
	for i := 0; i < 2*warmupMin; i++ {
		r.ObserveLatency(time.Millisecond)
	}
	if th := r.Threshold(); th != time.Millisecond {
		t.Fatalf("Threshold = %v, want 1ms", th)
	}
	if !r.ObserveLatency(50 * time.Millisecond) {
		t.Error("50ms not flagged slow against 1ms p99")
	}
	if r.ObserveLatency(time.Millisecond / 2) {
		t.Error("0.5ms flagged slow against 1ms p99")
	}
}

func TestSetThresholdPins(t *testing.T) {
	r := New(4, 4)
	r.SetThreshold(10 * time.Millisecond)
	if r.ObserveLatency(5 * time.Millisecond) {
		t.Error("below pinned threshold flagged slow")
	}
	if !r.ObserveLatency(20 * time.Millisecond) {
		t.Error("above pinned threshold not flagged slow (pin should skip warmup)")
	}
	if st := r.Stats(); !st.Pinned || st.Threshold != 10*time.Millisecond {
		t.Errorf("Stats = %+v, want pinned 10ms", st)
	}
}

func TestLookup(t *testing.T) {
	r := New(8, 8)
	r.Retain(&Trace{TraceID: "tid-a", RID: "rid-1"})
	r.Retain(&Trace{TraceID: "tid-b", RID: "rid-2"})
	if tr := r.Lookup("", "tid-a"); tr == nil || tr.RID != "rid-1" {
		t.Errorf("Lookup by tid failed: %+v", tr)
	}
	if tr := r.Lookup("rid-2", ""); tr == nil || tr.TraceID != "tid-b" {
		t.Errorf("Lookup by rid failed: %+v", tr)
	}
	// A batch item rid resolves to its batch's trace.
	if tr := r.Lookup("rid-2-17", ""); tr == nil || tr.TraceID != "tid-b" {
		t.Errorf("Lookup by item rid failed: %+v", tr)
	}
	if tr := r.Lookup("rid-29", ""); tr != nil {
		t.Errorf("Lookup(rid-29) matched %+v, want nil", tr)
	}
	if tr := r.Lookup("nope", "nope"); tr != nil {
		t.Errorf("Lookup miss returned %+v", tr)
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	r := New(16, 16)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Traces()
				r.Events()
				r.Stats()
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				r.ObserveLatency(time.Duration(i%257+1) * time.Microsecond)
				r.Retain(&Trace{TraceID: fmt.Sprintf("g%d-%d", g, i)})
				r.Emit(&Event{Kind: "breach"})
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if st := r.Stats(); st.Retained != 8000 || st.Events != 8000 || st.Observed != 8000 {
		t.Errorf("Stats after concurrent run = %+v", st)
	}
	if got := len(r.Traces()); got != 16 {
		t.Errorf("ring holds %d traces, want 16", got)
	}
}

// TestRecordPathZeroAllocs is the bounded-overhead contract of the
// always-on recorder: ObserveLatency (every request), Retain, and Emit
// (retained requests only) allocate nothing, including the threshold
// recompute passes that fire inside the loop.
func TestRecordPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := New(32, 32)
	tr := &Trace{TraceID: "t-prealloc"}
	ev := &Event{Kind: "breach"}
	var i int
	allocs := testing.AllocsPerRun(4*windowSize, func() {
		i++
		r.ObserveLatency(time.Duration(i%1000) * time.Microsecond)
		r.Retain(tr)
		r.Emit(ev)
	})
	if allocs != 0 {
		t.Errorf("record path allocates %.1f/op, want 0", allocs)
	}
}

// TestNoLocksOnRecordPath pins the package's lock-freedom by source
// scan: no sync.Mutex/RWMutex/Cond anywhere in the non-test files, and
// no channel operations — the record path must stay wait-free so a
// wedged reader can never stall serving.
func TestNoLocksOnRecordPath(t *testing.T) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "sync" {
					if sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex" || sel.Sel.Name == "Cond" || sel.Sel.Name == "WaitGroup" {
						t.Errorf("%s: flight recorder uses sync.%s — record path must be lock-free", name, sel.Sel.Name)
					}
				}
			}
			if _, ok := n.(*ast.ChanType); ok {
				t.Errorf("%s: flight recorder declares a channel — record path must be lock-free", name)
			}
			return true
		})
	}
}
