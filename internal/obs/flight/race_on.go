//go:build race

package flight

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count assertions skip under it.
const raceEnabled = true
