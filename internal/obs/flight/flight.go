// Package flight is the serving stack's crash/latency flight recorder:
// a fixed-size, lock-free ring buffer holding the last N retained
// request traces plus recent notable events (breaches, motion
// fallbacks, apply errors). It is the retention side of tail-based
// sampling — the server opens an obs.Capture on every request, and only
// interesting requests (slow, errored, breached, fallen back,
// cache-miss flights, propagated) graduate into the recorder.
//
// The record path — ObserveLatency, Retain, Emit — takes no locks and
// performs no allocations: slots are atomic.Pointer stores behind a
// monotonically increasing head counter, and the rolling p99 latency
// threshold is recomputed off a fixed window under a CAS try-guard into
// a preallocated scratch buffer. Readers get point-in-time best-effort
// snapshots, which is the right trade for an always-on debug surface.
package flight

import (
	"crypto/rand"
	"encoding/hex"
	"slices"
	"strconv"
	"sync/atomic"
	"time"

	"policyanon/internal/obs"
)

// Trace-context propagation headers. TraceIDHeader extends the existing
// X-Request-ID threading with a capture identity that survives cluster
// RPC hops; ParentSpanHeader names the caller-side span the remote
// call tree hangs under, so a coordinator dump can stitch shard-side
// spans into one tree. The spellings are textproto-canonical (hence
// "Id", not "ID") so Header.Get/Set on the per-request hot path never
// re-canonicalize the key; HTTP header names are case-insensitive, so
// clients may send X-TRACE-ID or any other casing.
const (
	TraceIDHeader    = "X-Trace-Id"
	ParentSpanHeader = "X-Parent-Span"
	ForceHeader      = "X-Debug-Trace"
)

// Retention reasons attached to a retained trace.
const (
	ReasonSlow       = "slow"       // latency above the rolling p99-derived threshold
	ReasonError      = "error"      // HTTP status >= 400 or apply error
	ReasonBreach     = "breach"     // audit sampler observed an anonymity breach
	ReasonFallback   = "fallback"   // motion maintenance fell back to a full rebuild
	ReasonFlight     = "flight"     // request led a CSP cache-miss singleflight
	ReasonPropagated = "propagated" // carried an upstream X-Trace-ID (cluster shard leg)
	ReasonForced     = "forced"     // X-Debug-Trace request header
)

// Trace is one retained request (or motion batch) with its full span
// tree. Span Start offsets are relative to the capture epoch (request
// receipt), so traces from different processes line up approximately
// when stitched.
type Trace struct {
	TraceID      string           `json:"traceID"`
	RID          string           `json:"rid,omitempty"`
	Route        string           `json:"route"`
	Status       int              `json:"status,omitempty"`
	Start        time.Time        `json:"start"`
	Dur          time.Duration    `json:"durNs"`
	Reasons      []string         `json:"reasons"`
	RemoteParent uint64           `json:"remoteParent,omitempty"`
	Spans        []obs.SpanRecord `json:"spans"`
	SpansDropped int              `json:"spansDropped,omitempty"`
}

// Summary is the per-trace line of a flight-recorder dump: everything
// but the span tree.
type Summary struct {
	TraceID string    `json:"traceID"`
	RID     string    `json:"rid,omitempty"`
	Route   string    `json:"route"`
	Status  int       `json:"status,omitempty"`
	Start   time.Time `json:"start"`
	DurMs   float64   `json:"durMs"`
	Reasons []string  `json:"reasons"`
	Spans   int       `json:"spans"`
}

// Summary flattens the trace to its dump line.
func (t *Trace) Summary() Summary {
	return Summary{
		TraceID: t.TraceID, RID: t.RID, Route: t.Route, Status: t.Status,
		Start: t.Start, DurMs: float64(t.Dur.Nanoseconds()) / 1e6,
		Reasons: t.Reasons, Spans: len(t.Spans),
	}
}

// Event is one notable occurrence pinned to the ring independently of
// trace retention: a breach, a motion fallback, an apply error.
type Event struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	RID     string    `json:"rid,omitempty"`
	TraceID string    `json:"traceID,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Stats is the recorder's aggregate view, reported by the
// /v1/debug/flightrecorder endpoint.
type Stats struct {
	Observed    int64         `json:"observed"` // latencies fed into the rolling window
	Retained    int64         `json:"retained"` // traces ever retained (ring holds the last Capacity)
	Events      int64         `json:"events"`   // events ever emitted
	Capacity    int           `json:"capacity"` // trace ring size
	EventCap    int           `json:"eventCapacity"`
	ThresholdMs float64       `json:"slowThresholdMs"` // current p99-derived slow threshold (0 = warming up)
	Pinned      bool          `json:"thresholdPinned"`
	Threshold   time.Duration `json:"-"`
}

const (
	// DefaultTraces and DefaultEvents size the rings when New is given
	// non-positive capacities.
	DefaultTraces = 256
	DefaultEvents = 1024

	windowSize     = 1024 // rolling latency window (power of two)
	recomputeEvery = 256  // threshold recompute cadence, in observations
	warmupMin      = 128  // observations before anything is called slow
)

// Recorder is the flight recorder. All methods are safe for concurrent
// use; the record path (ObserveLatency, Retain, Emit) is lock-free and
// allocation-free.
type Recorder struct {
	traces  []atomic.Pointer[Trace]
	head    atomic.Uint64
	events  []atomic.Pointer[Event]
	evHead  atomic.Uint64
	window  []atomic.Int64
	wHead   atomic.Uint64
	thresh  atomic.Int64 // slow threshold, ns; 0 = not yet established
	pinned  atomic.Bool  // SetThreshold pins, disabling recompute
	recomp  atomic.Bool  // CAS try-guard around threshold recompute
	scratch []int64      // recompute sort buffer, guarded by recomp
}

// New returns a recorder holding the last traceCap traces and eventCap
// events (non-positive values select the defaults).
func New(traceCap, eventCap int) *Recorder {
	if traceCap <= 0 {
		traceCap = DefaultTraces
	}
	if eventCap <= 0 {
		eventCap = DefaultEvents
	}
	return &Recorder{
		traces:  make([]atomic.Pointer[Trace], traceCap),
		events:  make([]atomic.Pointer[Event], eventCap),
		window:  make([]atomic.Int64, windowSize),
		scratch: make([]int64, 0, windowSize),
	}
}

// ObserveLatency feeds one serving latency into the rolling window and
// reports whether it clears the slow threshold. The threshold is the
// window's p99, recomputed every recomputeEvery observations by
// whichever caller wins the CAS (losers skip — the threshold is a
// heuristic, not an invariant). Nothing is slow until the window has
// warmed up, unless the threshold was pinned with SetThreshold.
func (r *Recorder) ObserveLatency(d time.Duration) bool {
	n := r.wHead.Add(1)
	r.window[(n-1)%windowSize].Store(d.Nanoseconds())
	if !r.pinned.Load() && n%recomputeEvery == 0 {
		r.recompute()
	}
	th := r.thresh.Load()
	if th <= 0 {
		return false
	}
	if !r.pinned.Load() && n < warmupMin {
		return false
	}
	return d.Nanoseconds() > th
}

func (r *Recorder) recompute() {
	if !r.recomp.CompareAndSwap(false, true) {
		return
	}
	defer r.recomp.Store(false)
	buf := r.scratch[:0]
	for i := range r.window {
		if v := r.window[i].Load(); v > 0 {
			buf = append(buf, v)
		}
	}
	if len(buf) == 0 {
		return
	}
	slices.Sort(buf)
	idx := len(buf) * 99 / 100
	if idx >= len(buf) {
		idx = len(buf) - 1
	}
	r.thresh.Store(buf[idx])
}

// Threshold returns the current slow threshold (0 while warming up).
func (r *Recorder) Threshold() time.Duration {
	return time.Duration(r.thresh.Load())
}

// SetThreshold pins the slow threshold, disabling the rolling-p99
// recompute — for tests and for operators who want a fixed SLO line.
// A non-positive d unpins and resumes the rolling behaviour.
func (r *Recorder) SetThreshold(d time.Duration) {
	if d <= 0 {
		r.pinned.Store(false)
		return
	}
	r.thresh.Store(d.Nanoseconds())
	r.pinned.Store(true)
}

// Retain stores t into the trace ring, evicting the oldest entry once
// the ring is full.
func (r *Recorder) Retain(t *Trace) {
	if t == nil {
		return
	}
	n := r.head.Add(1)
	r.traces[(n-1)%uint64(len(r.traces))].Store(t)
}

// Emit stores ev into the event ring.
func (r *Recorder) Emit(ev *Event) {
	if ev == nil {
		return
	}
	n := r.evHead.Add(1)
	r.events[(n-1)%uint64(len(r.events))].Store(ev)
}

// Traces returns a newest-first snapshot of the retained traces.
func (r *Recorder) Traces() []*Trace {
	n := r.head.Load()
	cap64 := uint64(len(r.traces))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]*Trace, 0, count)
	for i := uint64(0); i < count; i++ {
		if t := r.traces[(n-1-i)%cap64].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Events returns a newest-first snapshot of the event ring.
func (r *Recorder) Events() []*Event {
	n := r.evHead.Load()
	cap64 := uint64(len(r.events))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]*Event, 0, count)
	for i := uint64(0); i < count; i++ {
		if ev := r.events[(n-1-i)%cap64].Load(); ev != nil {
			out = append(out, ev)
		}
	}
	return out
}

// Lookup returns the newest retained trace whose request ID or trace ID
// matches, or nil. A batch item rid ("<batch-rid>-<i>") matches its
// batch's trace.
func (r *Recorder) Lookup(rid, traceID string) *Trace {
	for _, t := range r.Traces() {
		if traceID != "" && t.TraceID == traceID {
			return t
		}
		if rid != "" && t.RID != "" {
			if t.RID == rid || (len(rid) > len(t.RID) && rid[:len(t.RID)] == t.RID && rid[len(t.RID)] == '-') {
				return t
			}
		}
	}
	return nil
}

// Stats reports the recorder's aggregate counters.
func (r *Recorder) Stats() Stats {
	th := time.Duration(r.thresh.Load())
	return Stats{
		Observed:    int64(r.wHead.Load()),
		Retained:    int64(r.head.Load()),
		Events:      int64(r.evHead.Load()),
		Capacity:    len(r.traces),
		EventCap:    len(r.events),
		ThresholdMs: float64(th.Nanoseconds()) / 1e6,
		Pinned:      r.pinned.Load(),
		Threshold:   th,
	}
}

// tidPrefix distinguishes processes, like audit's ridPrefix: each
// process draws a random prefix at start so concurrently minted trace
// IDs cannot collide across a cluster.
var tidPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var tidCounter atomic.Uint64

// MintTraceID returns a new process-unique trace identifier, e.g.
// "t9f2c41aa-17", mirroring audit.MintRequestID. It is built with
// appends, not fmt, because it runs once per served request.
func MintTraceID() string {
	b := make([]byte, 0, 24)
	b = append(b, 't')
	b = append(b, tidPrefix...)
	b = append(b, '-')
	b = strconv.AppendUint(b, tidCounter.Add(1), 16)
	return string(b)
}
