package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace_event "complete" ("X") event. Times are
// microseconds, the unit the trace_event format mandates.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  uint64            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the trace_event
// format, which chrome://tracing and Perfetto both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained spans as Chrome trace_event JSON.
// Each display lane becomes a thread row; nesting within a lane is
// inferred by the viewer from time containment, matching the span
// parent/child structure because children start and end inside their
// parents.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeSpans(w, t.Spans())
}

// WriteChromeSpans exports an arbitrary span list — a Tracer buffer, one
// flight-recorder capture, or a stitched cluster trace — in the same
// Chrome trace_event form as WriteChromeTrace.
func WriteChromeSpans(w io.Writer, spans []SpanRecord) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "policyanon",
			Ph:   "X",
			TS:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  s.Lane,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
