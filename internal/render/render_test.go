package render

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"policyanon/internal/geo"
	"policyanon/internal/location"
	"policyanon/internal/tree"
	"policyanon/internal/workload"
)

func denseTree(t *testing.T) *tree.Tree {
	t.Helper()
	db := workload.Generate(workload.Config{
		MapSide: 1 << 10, Intersections: 300, UsersPerIntersection: 5, SpreadSigma: 20,
	}, 3)
	tr, err := tree.Build(db.Points(), geo.NewRect(0, 0, 1<<10, 1<<10), tree.Options{
		Kind: tree.Binary, MinCountToSplit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreePGMFormat(t *testing.T) {
	tr := denseTree(t)
	const width = 64
	img, err := TreePGM(tr, width)
	if err != nil {
		t.Fatal(err)
	}
	header := fmt.Sprintf("P5\n%d %d\n255\n", width, width)
	if !bytes.HasPrefix(img, []byte(header)) {
		t.Fatalf("bad PGM header: %q", img[:20])
	}
	if len(img) != len(header)+width*width {
		t.Fatalf("image size %d, want %d", len(img), len(header)+width*width)
	}
	// Dense areas (deep leaves) must be brighter than sparse ones: the
	// image must contain at least two distinct gray levels above the
	// border color.
	levels := make(map[byte]bool)
	for _, v := range img[len(header):] {
		if v > 10 {
			levels[v] = true
		}
	}
	if len(levels) < 2 {
		t.Fatalf("flat image: %d gray levels", len(levels))
	}
}

func TestTreePGMDeterministic(t *testing.T) {
	tr := denseTree(t)
	a, err := TreePGM(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreePGM(tr, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("rendering not deterministic")
	}
}

func TestTreePGMTooSmall(t *testing.T) {
	tr := denseTree(t)
	if _, err := TreePGM(tr, 4); err == nil {
		t.Fatal("tiny width accepted")
	}
}

func TestDensityASCII(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := location.New(500)
	// Cluster everything in the southwest corner.
	for i := 0; i < 500; i++ {
		if err := db.Add(fmt.Sprintf("u%d", i),
			geo.Point{X: rng.Int31n(100), Y: rng.Int31n(100)}); err != nil {
			t.Fatal(err)
		}
	}
	art := DensityASCII(db, 1<<10, 8)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 8 || len(lines[0]) != 8 {
		t.Fatalf("grid shape wrong:\n%s", art)
	}
	// The southwest corner is the bottom-left character; it must carry
	// the darkest shade, the rest mostly empty.
	if lines[7][0] != '@' {
		t.Fatalf("dense corner not darkest:\n%s", art)
	}
	if lines[0][7] != ' ' {
		t.Fatalf("empty corner not blank:\n%s", art)
	}
	if DensityASCII(db, 1<<10, 0) != "" {
		t.Fatal("zero cells should render empty")
	}
}

func TestDensityASCIIEmptyDB(t *testing.T) {
	db := location.New(0)
	art := DensityASCII(db, 64, 4)
	if strings.Trim(art, " \n") != "" {
		t.Fatalf("empty db rendered non-blank:\n%q", art)
	}
}
