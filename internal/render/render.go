// Package render produces the visual artifacts of the paper's figures:
// the tree-structure image of Figure 3(a) — leaf (semi-)quadrants shaded
// by height, "nodes of greater height are brighter" — as a portable
// graymap (PGM), and ASCII density maps standing in for the Figure 2
// population-density plots.
package render

import (
	"fmt"
	"strings"

	"policyanon/internal/location"
	"policyanon/internal/tree"
)

// TreePGM renders the tree's leaves into a binary PGM (P5) image of the
// given pixel width (height equals width: the map is square). Each leaf
// region is filled with a gray level proportional to its height, so dense
// areas — where the lazy materialization splits deepest — appear
// brightest, exactly as in Figure 3(a). Leaf borders are drawn one pixel
// dark to make the subdivision visible.
func TreePGM(t *tree.Tree, width int) ([]byte, error) {
	if width < 8 {
		return nil, fmt.Errorf("render: width %d too small", width)
	}
	bounds := t.Bounds()
	maxH := 1
	t.PostOrder(func(id tree.NodeID) {
		if t.IsLeaf(id) && t.Height(id) > maxH {
			maxH = t.Height(id)
		}
	})
	px := make([]byte, width*width)
	scaleX := float64(width) / float64(bounds.Width())
	scaleY := float64(width) / float64(bounds.Height())
	t.PostOrder(func(id tree.NodeID) {
		if !t.IsLeaf(id) {
			return
		}
		r := t.Rect(id)
		gray := byte(40 + 215*t.Height(id)/maxH)
		x0 := int(float64(r.MinX-bounds.MinX) * scaleX)
		x1 := int(float64(r.MaxX-bounds.MinX) * scaleX)
		y0 := int(float64(r.MinY-bounds.MinY) * scaleY)
		y1 := int(float64(r.MaxY-bounds.MinY) * scaleY)
		if x1 > width {
			x1 = width
		}
		if y1 > width {
			y1 = width
		}
		for y := y0; y < y1; y++ {
			// PGM rows run top-down; our Y axis runs bottom-up.
			row := (width - 1 - y) * width
			for x := x0; x < x1; x++ {
				v := gray
				if x == x0 || y == y0 {
					v = 10 // cell border
				}
				px[row+x] = v
			}
		}
	})
	header := fmt.Sprintf("P5\n%d %d\n255\n", width, width)
	return append([]byte(header), px...), nil
}

// DensityASCII renders a cells x cells occupancy map of the snapshot as
// shaded ASCII art (darkest = densest), the textual stand-in for the
// Figure 2 population-density plots.
func DensityASCII(db *location.DB, side int32, cells int) string {
	if cells < 1 {
		return ""
	}
	grid := make([][]int, cells)
	for i := range grid {
		grid[i] = make([]int, cells)
	}
	cw := float64(side) / float64(cells)
	maxV := 0
	for _, r := range db.Records() {
		cx, cy := int(float64(r.Loc.X)/cw), int(float64(r.Loc.Y)/cw)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		grid[cy][cx]++
		if grid[cy][cx] > maxV {
			maxV = grid[cy][cx]
		}
	}
	shades := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for y := cells - 1; y >= 0; y-- { // north at the top
		for x := 0; x < cells; x++ {
			idx := 0
			if maxV > 0 {
				idx = grid[y][x] * (len(shades) - 1) / maxV
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
