package workload_test

import (
	"fmt"

	"policyanon/internal/workload"
)

// ExampleGenerate builds a small deterministic synthetic snapshot.
func ExampleGenerate() {
	db := workload.Generate(workload.Config{
		Intersections:        100,
		UsersPerIntersection: 10,
	}, 42)
	fmt.Println("users:", db.Len())
	grid := workload.DensityGrid(db, workload.DefaultMapSide, 8)
	fmt.Println("skewed:", workload.SkewRatio(grid) > 2)
	// Output:
	// users: 1000
	// skewed: true
}
