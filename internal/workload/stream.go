package workload

import (
	"math"
	"math/rand"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// MoveStream is the continuous-emission form of the movement model: where
// PlanMoves produces one between-snapshots batch, a MoveStream emits an
// endless sequence of bounded moves suitable for feeding a live ingest
// pipeline. It keeps private copies of every user's position — advanced as
// moves are emitted — so each emitted move respects the ≤ maxDistMeters
// bounded-motion model relative to the user's previous emitted position,
// regardless of when (or whether) the consumer applies it.
//
// Users are visited in shuffled round-robin order (reshuffled every full
// pass), so churn spreads evenly instead of hammering a hot subset. A
// MoveStream is deterministic in its seed and not safe for concurrent use.
type MoveStream struct {
	rng  *rand.Rand
	ids  []string
	pos  []geo.Point
	max  float64
	side int32

	order []int
	next  int
}

// NewMoveStream captures the users and positions of db (by copy; db is
// not retained) and emits moves of at most maxDistMeters on the
// side×side map.
func NewMoveStream(seed int64, db *location.DB, maxDistMeters float64, side int32) *MoveStream {
	s := &MoveStream{
		rng:  rand.New(rand.NewSource(seed)),
		ids:  make([]string, db.Len()),
		pos:  make([]geo.Point, db.Len()),
		max:  maxDistMeters,
		side: side,
	}
	for i, r := range db.Records() {
		s.ids[i] = r.UserID
		s.pos[i] = r.Loc
	}
	s.order = s.rng.Perm(len(s.ids))
	return s
}

// Len returns the number of users in the stream.
func (s *MoveStream) Len() int { return len(s.ids) }

// UserID returns the user id behind a record index, for consumers that
// address updates by id rather than index.
func (s *MoveStream) UserID(idx int) string { return s.ids[idx] }

// Next emits one move: the next user in round-robin order displaced a
// uniform random distance in (0, maxDistMeters] in a uniformly random
// direction, clipped to the map.
func (s *MoveStream) Next() Move {
	if s.next >= len(s.order) {
		s.order = s.rng.Perm(len(s.ids))
		s.next = 0
	}
	idx := s.order[s.next]
	s.next++
	from := s.pos[idx]
	theta := s.rng.Float64() * 2 * math.Pi
	dist := s.rng.Float64() * s.max
	to := geo.Point{
		X: clampInt32(float64(from.X)+dist*math.Cos(theta), s.side),
		Y: clampInt32(float64(from.Y)+dist*math.Sin(theta), s.side),
	}
	s.pos[idx] = to
	return Move{Index: idx, To: to}
}

// NextBatch emits the next n moves.
func (s *MoveStream) NextBatch(n int) []Move {
	moves := make([]Move, n)
	for i := range moves {
		moves[i] = s.Next()
	}
	return moves
}
