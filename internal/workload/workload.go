// Package workload generates the synthetic location data used by the
// experiments, substituting for the paper's San Francisco Bay street
// intersection dataset (175k intersections, [8]) and its census-density
// validation (Fig. 2).
//
// The paper's recipe is followed exactly where possible: a set of
// "intersections" is laid down with a heavily skewed spatial distribution
// (dense urban cores, linear corridors, sparse rural background), and then
// each intersection is amplified into UsersPerIntersection user locations
// drawn from a Gaussian with a 500 m standard deviation, producing a
// 1.75M-location Master set at the default parameters. Smaller location
// databases are uniform samples of the Master set, as in Section VI.
//
// The package also implements the movement model of the incremental
// maintenance experiment (Fig. 5b): a chosen fraction of users move up to
// MaxMoveMeters in a uniformly random direction between snapshots.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"policyanon/internal/geo"
	"policyanon/internal/location"
)

// DefaultMapSide is the side of the square map in meters: 2^17 ≈ 131 km,
// about the extent of the San Francisco Bay Area. A power of two keeps
// quad-tree splits exact all the way down to 1 m cells.
const DefaultMapSide int32 = 1 << 17

// MapBounds returns the square map rectangle for a given side.
func MapBounds(side int32) geo.Rect { return geo.NewRect(0, 0, side, side) }

// Config parameterizes the synthetic Bay-Area generator.
type Config struct {
	// MapSide is the map's square side in meters (default DefaultMapSide).
	MapSide int32
	// Intersections is the number of street intersections (default 175000,
	// matching the dataset size reported in Section VI).
	Intersections int
	// UsersPerIntersection is the amplification factor (default 10).
	UsersPerIntersection int
	// SpreadSigma is the Gaussian spread of users around an intersection
	// in meters (default 500, the paper's value).
	SpreadSigma float64
	// Cores is the number of dense urban cores (default 6).
	Cores int
	// Corridors is the number of linear highway corridors connecting
	// random core pairs (default 8).
	Corridors int
	// BackgroundFrac is the fraction of intersections placed uniformly at
	// random as rural background (default 0.1).
	BackgroundFrac float64
}

func (c Config) withDefaults() Config {
	if c.MapSide == 0 {
		c.MapSide = DefaultMapSide
	}
	if c.Intersections == 0 {
		c.Intersections = 175000
	}
	if c.UsersPerIntersection == 0 {
		c.UsersPerIntersection = 10
	}
	if c.SpreadSigma == 0 {
		c.SpreadSigma = 500
	}
	if c.Cores == 0 {
		c.Cores = 6
	}
	if c.Corridors == 0 {
		c.Corridors = 8
	}
	if c.BackgroundFrac == 0 {
		c.BackgroundFrac = 0.1
	}
	return c
}

// Generate produces a Master location snapshot deterministically from the
// seed. With the default Config it yields 1.75M locations.
func Generate(cfg Config, seed int64) *location.DB {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	inter := intersections(cfg, rng)
	db := location.New(len(inter) * cfg.UsersPerIntersection)
	n := 0
	for _, c := range inter {
		for u := 0; u < cfg.UsersPerIntersection; u++ {
			p := gaussianAround(rng, c, cfg.SpreadSigma, cfg.MapSide)
			// Generated ids are unique by construction, so Add cannot fail.
			if err := db.Add(fmt.Sprintf("u%08d", n), p); err != nil {
				panic(err)
			}
			n++
		}
	}
	return db
}

// intersections lays down the skewed intersection distribution.
func intersections(cfg Config, rng *rand.Rand) []geo.Point {
	side := float64(cfg.MapSide)
	// Urban cores: centers in the middle 80% of the map, each with its own
	// spread between 2% and 6% of the map side. Core weights decay so one
	// or two cores dominate, like SF/Oakland/San Jose in Fig. 2.
	type core struct {
		x, y, sigma, weight float64
	}
	cores := make([]core, cfg.Cores)
	totalW := 0.0
	for i := range cores {
		cores[i] = core{
			x:      side * (0.1 + 0.8*rng.Float64()),
			y:      side * (0.1 + 0.8*rng.Float64()),
			sigma:  side * (0.02 + 0.04*rng.Float64()),
			weight: math.Pow(0.6, float64(i)),
		}
		totalW += cores[i].weight
	}
	type corridor struct{ x1, y1, x2, y2 float64 }
	corridors := make([]corridor, cfg.Corridors)
	for i := range corridors {
		a, b := cores[rng.Intn(len(cores))], cores[rng.Intn(len(cores))]
		corridors[i] = corridor{a.x, a.y, b.x, b.y}
	}

	nBackground := int(float64(cfg.Intersections) * cfg.BackgroundFrac)
	if nBackground > cfg.Intersections {
		nBackground = cfg.Intersections
	}
	nCorridor := cfg.Intersections / 5
	if rest := cfg.Intersections - nBackground; nCorridor > rest {
		nCorridor = rest
	}
	nCore := cfg.Intersections - nBackground - nCorridor

	pts := make([]geo.Point, 0, cfg.Intersections)
	clip := func(x, y float64) geo.Point {
		return geo.Point{X: clampInt32(x, cfg.MapSide), Y: clampInt32(y, cfg.MapSide)}
	}
	for i := 0; i < nCore; i++ {
		r := rng.Float64() * totalW
		c := cores[len(cores)-1]
		for _, cand := range cores {
			if r < cand.weight {
				c = cand
				break
			}
			r -= cand.weight
		}
		pts = append(pts, clip(c.x+rng.NormFloat64()*c.sigma, c.y+rng.NormFloat64()*c.sigma))
	}
	corridorSigma := side * 0.005
	for i := 0; i < nCorridor; i++ {
		c := corridors[rng.Intn(len(corridors))]
		t := rng.Float64()
		x := c.x1 + t*(c.x2-c.x1) + rng.NormFloat64()*corridorSigma
		y := c.y1 + t*(c.y2-c.y1) + rng.NormFloat64()*corridorSigma
		pts = append(pts, clip(x, y))
	}
	for i := 0; i < nBackground; i++ {
		pts = append(pts, geo.Point{X: rng.Int31n(cfg.MapSide), Y: rng.Int31n(cfg.MapSide)})
	}
	return pts
}

func gaussianAround(rng *rand.Rand, c geo.Point, sigma float64, side int32) geo.Point {
	x := float64(c.X) + rng.NormFloat64()*sigma
	y := float64(c.Y) + rng.NormFloat64()*sigma
	return geo.Point{X: clampInt32(x, side), Y: clampInt32(y, side)}
}

func clampInt32(v float64, side int32) int32 {
	if v < 0 {
		return 0
	}
	if v >= float64(side) {
		return side - 1
	}
	return int32(v)
}

// Move describes one user relocation between snapshots.
type Move struct {
	Index int // record index in the snapshot
	To    geo.Point
}

// PlanMoves selects fraction*|D| distinct users and moves each a uniform
// random distance in (0, maxDistMeters] in a uniformly random direction,
// clipped to the map. This is the update model of Section VI-C (the paper
// bounds movement by 200 m per 10 s snapshot interval).
func PlanMoves(rng *rand.Rand, db *location.DB, fraction float64, maxDistMeters float64, side int32) []Move {
	n := int(math.Round(fraction * float64(db.Len())))
	if n > db.Len() {
		n = db.Len()
	}
	perm := rng.Perm(db.Len())
	moves := make([]Move, 0, n)
	for _, idx := range perm[:n] {
		from := db.At(idx).Loc
		theta := rng.Float64() * 2 * math.Pi
		dist := rng.Float64() * maxDistMeters
		to := geo.Point{
			X: clampInt32(float64(from.X)+dist*math.Cos(theta), side),
			Y: clampInt32(float64(from.Y)+dist*math.Sin(theta), side),
		}
		moves = append(moves, Move{Index: idx, To: to})
	}
	return moves
}

// Apply applies the moves to a snapshot in place.
func Apply(db *location.DB, moves []Move) {
	for _, m := range moves {
		db.MoveAt(m.Index, m.To)
	}
}

// DensityGrid bins the snapshot into a cells×cells occupancy grid; the
// Fig. 2 experiment prints it to eyeball the skew of the synthetic data
// against the paper's population-density narrative.
func DensityGrid(db *location.DB, side int32, cells int) [][]int {
	g := make([][]int, cells)
	for i := range g {
		g[i] = make([]int, cells)
	}
	cw := float64(side) / float64(cells)
	for _, r := range db.Records() {
		cx := int(float64(r.Loc.X) / cw)
		cy := int(float64(r.Loc.Y) / cw)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		g[cy][cx]++
	}
	return g
}

// SkewRatio summarizes a density grid as max-cell/mean-cell occupancy; a
// uniform distribution scores ~1, the synthetic bay area scores far above.
func SkewRatio(grid [][]int) float64 {
	maxv, total, n := 0, 0, 0
	for _, row := range grid {
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
			total += v
			n++
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(n)
	return float64(maxv) / mean
}
