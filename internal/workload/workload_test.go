package workload

import (
	"math"
	"math/rand"
	"testing"

	"policyanon/internal/geo"
)

// smallCfg keeps generation fast in unit tests.
func smallCfg() Config {
	return Config{Intersections: 2000, UsersPerIntersection: 5}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallCfg(), 42)
	b := Generate(smallCfg(), 42)
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("record %d differs: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	c := Generate(smallCfg(), 43)
	same := true
	for i := 0; i < a.Len() && same; i++ {
		same = a.At(i) == c.At(i)
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateSizeAndBounds(t *testing.T) {
	cfg := smallCfg()
	db := Generate(cfg, 1)
	if db.Len() != cfg.Intersections*cfg.UsersPerIntersection {
		t.Fatalf("len = %d, want %d", db.Len(), cfg.Intersections*cfg.UsersPerIntersection)
	}
	bounds := MapBounds(DefaultMapSide)
	for _, r := range db.Records() {
		if !bounds.Contains(r.Loc) {
			t.Fatalf("point %v outside map", r.Loc)
		}
	}
}

func TestGenerateIsSkewed(t *testing.T) {
	db := Generate(smallCfg(), 7)
	grid := DensityGrid(db, DefaultMapSide, 16)
	ratio := SkewRatio(grid)
	if ratio < 3 {
		t.Fatalf("synthetic data not skewed enough: max/mean = %.2f", ratio)
	}
	// And a uniform control should be near 1.
	rng := rand.New(rand.NewSource(1))
	uni := Generate(Config{Intersections: 10000, UsersPerIntersection: 1,
		BackgroundFrac: 1, SpreadSigma: 1, Cores: 1, Corridors: 1}, 1)
	_ = rng
	uratio := SkewRatio(DensityGrid(uni, DefaultMapSide, 4))
	if uratio > 3 {
		t.Fatalf("uniform control unexpectedly skewed: %.2f", uratio)
	}
}

func TestPlanMovesRespectsDistanceAndFraction(t *testing.T) {
	db := Generate(smallCfg(), 3)
	rng := rand.New(rand.NewSource(9))
	const maxDist = 200.0
	moves := PlanMoves(rng, db, 0.05, maxDist, DefaultMapSide)
	want := int(math.Round(0.05 * float64(db.Len())))
	if len(moves) != want {
		t.Fatalf("planned %d moves, want %d", len(moves), want)
	}
	seen := make(map[int]bool)
	bounds := MapBounds(DefaultMapSide)
	for _, m := range moves {
		if seen[m.Index] {
			t.Fatalf("user %d moved twice", m.Index)
		}
		seen[m.Index] = true
		if !bounds.Contains(m.To) {
			t.Fatalf("move target %v outside map", m.To)
		}
		from := db.At(m.Index).Loc
		// Clipping at the map edge can only shorten the step.
		if d := from.Dist(m.To); d > maxDist+1.5 {
			t.Fatalf("move of %.1f m exceeds bound %v", d, maxDist)
		}
	}
}

func TestPlanMovesFractionClamped(t *testing.T) {
	db := Generate(Config{Intersections: 10, UsersPerIntersection: 1}, 5)
	rng := rand.New(rand.NewSource(2))
	moves := PlanMoves(rng, db, 2.0, 100, DefaultMapSide)
	if len(moves) != db.Len() {
		t.Fatalf("fraction > 1 should move everyone: %d of %d", len(moves), db.Len())
	}
}

func TestApply(t *testing.T) {
	db := Generate(smallCfg(), 11)
	rng := rand.New(rand.NewSource(4))
	moves := PlanMoves(rng, db, 0.01, 200, DefaultMapSide)
	before := db.Clone()
	Apply(db, moves)
	diff, err := before.Diff(db)
	if err != nil {
		t.Fatal(err)
	}
	// Some planned moves may coincidentally land on the same point;
	// every changed record must be a planned one.
	planned := make(map[int]geo.Point)
	for _, m := range moves {
		planned[m.Index] = m.To
	}
	for _, idx := range diff {
		to, ok := planned[idx]
		if !ok {
			t.Fatalf("record %d changed without a planned move", idx)
		}
		if db.At(idx).Loc != to {
			t.Fatalf("record %d at %v, planned %v", idx, db.At(idx).Loc, to)
		}
	}
}

func TestDensityGridCountsEverything(t *testing.T) {
	db := Generate(smallCfg(), 13)
	grid := DensityGrid(db, DefaultMapSide, 8)
	total := 0
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}
	if total != db.Len() {
		t.Fatalf("grid total %d != %d", total, db.Len())
	}
}

func TestSkewRatioEmpty(t *testing.T) {
	if r := SkewRatio([][]int{{0, 0}, {0, 0}}); r != 0 {
		t.Fatalf("empty skew = %v", r)
	}
}
