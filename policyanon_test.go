package policyanon_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"policyanon"
)

// tableIDB builds the Example-1-shaped five-user snapshot through the
// public API.
func tableIDB(t *testing.T) *policyanon.LocationDB {
	t.Helper()
	db := policyanon.NewLocationDB()
	for _, u := range []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}} {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := tableIDB(t)
	bounds := policyanon.Square(0, 0, 8)
	const k = 2

	puq, err := policyanon.PUQ(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	if policyanon.IsKAnonymous(puq, k, policyanon.PolicyAware) {
		t.Fatal("Example 1 breach not reproduced via public API")
	}
	anon, err := policyanon.NewAnonymizer(db, bounds, policyanon.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := anon.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !policyanon.IsKAnonymous(pol, k, policyanon.PolicyAware) {
		t.Fatal("optimal policy breached via public API")
	}
	cloak, err := pol.CloakOf("Carol")
	if err != nil {
		t.Fatal(err)
	}
	cands := policyanon.Candidates(pol, cloak, policyanon.PolicyAware)
	if len(cands) < k {
		t.Fatalf("Carol's candidates %v below k", cands)
	}
}

func TestPublicAPIInsufficientUsers(t *testing.T) {
	db := tableIDB(t)
	anon, err := policyanon.NewAnonymizer(db, policyanon.Square(0, 0, 8), policyanon.Options{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Policy(); !errors.Is(err, policyanon.ErrInsufficientUsers) {
		t.Fatalf("got %v, want ErrInsufficientUsers", err)
	}
}

func TestPublicAPIWorkloadAndEngine(t *testing.T) {
	cfg := policyanon.WorkloadConfig{
		MapSide: 1 << 12, Intersections: 800, UsersPerIntersection: 5, SpreadSigma: 60,
	}
	db := policyanon.GenerateWorkload(cfg, 5)
	bounds := policyanon.Square(0, 0, cfg.MapSide)
	eng, err := policyanon.NewEngine(db, bounds, policyanon.EngineOptions{K: 20, Servers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := eng.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if !policyanon.IsKAnonymous(pol, 20, policyanon.PolicyAware) {
		t.Fatal("engine master policy breached")
	}
	jur, err := policyanon.Partition(db, bounds, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(jur) == 0 || len(jur) > 4 {
		t.Fatalf("partition returned %d jurisdictions", len(jur))
	}
}

func TestPublicAPICSVRoundTrip(t *testing.T) {
	db := tableIDB(t)
	var sb strings.Builder
	if err := db.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := policyanon.ReadLocationCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("round trip lost users: %d", back.Len())
	}
}

func TestPublicAPICircular(t *testing.T) {
	db := policyanon.NewLocationDB()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		if err := db.Add(fmt.Sprintf("u%d", i),
			policyanon.Pt(rng.Int31n(64), rng.Int31n(64))); err != nil {
			t.Fatal(err)
		}
	}
	centers := []policyanon.Point{policyanon.Pt(16, 16), policyanon.Pt(48, 48)}
	exact, err := policyanon.OptimalCircular(db, centers, 2)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := policyanon.GreedyCircular(db, centers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cost() > greedy.Cost()+1e-9 {
		t.Fatalf("exact %.1f worse than greedy %.1f", exact.Cost(), greedy.Cost())
	}
	nc, err := policyanon.NearestCenterCircles(db, centers, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nc.MinPolicyAwareAnonymity() < 1 {
		t.Fatal("degenerate nearest-center policy")
	}
}

func TestPublicAPIKSharing(t *testing.T) {
	db := tableIDB(t)
	cloaks, err := policyanon.KSharing(db, 2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cloaks) != 2 {
		t.Fatalf("got %d cloaks", len(cloaks))
	}
}

func TestPublicAPIAuditOrderingDeterministic(t *testing.T) {
	db := tableIDB(t)
	pol, err := policyanon.PUQ(db, policyanon.Square(0, 0, 8), 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, m1 := policyanon.Audit(pol, 3, policyanon.PolicyAware)
	b2, m2 := policyanon.Audit(pol, 3, policyanon.PolicyAware)
	if m1 != m2 || len(b1) != len(b2) {
		t.Fatal("audit not deterministic")
	}
	for i := range b1 {
		if b1[i].Cloak != b2[i].Cloak {
			t.Fatal("audit breach order not deterministic")
		}
		if !sort.StringsAreSorted(b1[i].Candidates) {
			// Candidates come in record order, not sorted; just ensure
			// the two runs agree element-wise.
			for j := range b1[i].Candidates {
				if b1[i].Candidates[j] != b2[i].Candidates[j] {
					t.Fatal("audit candidates not deterministic")
				}
			}
		}
	}
}

// ExampleNewAnonymizer demonstrates the core flow for godoc.
func ExampleNewAnonymizer() {
	db := policyanon.NewLocationDB()
	users := []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}}
	for _, u := range users {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			panic(err)
		}
	}
	anon, err := policyanon.NewAnonymizer(db, policyanon.Square(0, 0, 8), policyanon.Options{K: 2})
	if err != nil {
		panic(err)
	}
	policy, err := anon.Policy()
	if err != nil {
		panic(err)
	}
	fmt.Println("policy-aware 2-anonymous:",
		policyanon.IsKAnonymous(policy, 2, policyanon.PolicyAware))
	// Output: policy-aware 2-anonymous: true
}

// ExampleAudit shows breach detection on a broken k-inside policy.
func ExampleAudit() {
	db := policyanon.NewLocationDB()
	users := []struct {
		id   string
		x, y int32
	}{{"Alice", 1, 1}, {"Bob", 1, 2}, {"Carol", 1, 5}, {"Sam", 5, 1}, {"Tom", 6, 2}}
	for _, u := range users {
		if err := db.Add(u.id, policyanon.Pt(u.x, u.y)); err != nil {
			panic(err)
		}
	}
	puq, err := policyanon.PUQ(db, policyanon.Square(0, 0, 8), 2)
	if err != nil {
		panic(err)
	}
	breaches, minAnon := policyanon.Audit(puq, 2, policyanon.PolicyAware)
	fmt.Printf("breaches: %d, min anonymity: %d\n", len(breaches), minAnon)
	// Output: breaches: 1, min anonymity: 1
}

func TestPublicAPIExtensions(t *testing.T) {
	// Verify + adaptive + hilbert through the facade.
	cfg := policyanon.WorkloadConfig{
		MapSide: 1 << 12, Intersections: 600, UsersPerIntersection: 5, SpreadSigma: 60,
	}
	db := policyanon.GenerateWorkload(cfg, 8)
	bounds := policyanon.Square(0, 0, cfg.MapSide)
	const k = 15

	adaptive, err := policyanon.AdaptivePolicy(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep := policyanon.Verify(adaptive, k); !rep.OK() {
		t.Fatalf("adaptive policy failed verification: %v", rep.Problems)
	}
	hil, err := policyanon.HilbertCloak(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	if rep := policyanon.Verify(hil, k); !rep.OK() {
		t.Fatalf("hilbert policy failed verification: %v", rep.Problems)
	}
	mbc, err := policyanon.FindMBC(db, bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	if mbc.PolicyAwareAnonymity() >= k {
		t.Fatal("FindMBC unexpectedly policy-aware safe")
	}

	// Checkpoint + history round trip through the facade.
	var hist strings.Builder
	hw := policyanon.NewHistoryWriter(&hist)
	if err := hw.Append(k, bounds, adaptive); err != nil {
		t.Fatal(err)
	}
	if err := hw.Append(k, bounds, hil); err != nil {
		t.Fatal(err)
	}
	states, err := policyanon.ReadHistory(strings.NewReader(hist.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("history replayed %d epochs", len(states))
	}
	cands, err := policyanon.ReplayTrajectory(states, db.At(0).UserID)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("trajectory replay lost the sender")
	}

	// Rolling anonymizer through the facade.
	r, err := policyanon.NewRollingAnonymizer(db.Clone(), bounds, k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CloakOf(db.At(1).UserID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Commit(); err != nil {
		t.Fatal(err)
	}

	// Simulation through the facade.
	simRep, err := policyanon.RunSimulation(policyanon.SimConfig{Users: 400, K: 5, Snapshots: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if simRep.BreachedSnapshots != 0 {
		t.Fatal("facade simulation breached")
	}
}
