module policyanon

go 1.23
